// Package loopbudget defines an Analyzer generalizing ctxbudget from
// signatures to bodies: inside the kernel packages (bipartite, matching,
// core), a data-dependent loop nest — nesting depth ≥ 2 where at least one
// loop's trip count depends on runtime data — must consult the work budget
// or the context somewhere in the nest. The budget is the repo's graceful-
// degradation contract (exact → MCMC → O-estimate instead of hanging): a
// kernel loop that never calls Charge/Check or checks ctx can run
// arbitrarily long past its deadline, which is exactly the failure the
// budget machinery exists to rule out.
//
// Constant-trip nests (literal bounds, range over arrays or constant ints)
// are exempt — they cannot be data-sized. Depth-1 loops are exempt too:
// kernels legitimately charge per-sweep in the caller (simulateRun charges
// before each Sweep), and flagging every linear scan would drown the
// signal. A consult counts when it is a direct Charge/Check/Err/Done on a
// budget or context value, or a call to a package-local function that
// directly consults.
package loopbudget

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Packages lists the kernel packages whose loop nests must be budgeted.
// Tests register fixture packages here.
var Packages = map[string]bool{
	"repro/internal/bipartite": true,
	"repro/internal/matching":  true,
	"repro/internal/core":      true,
}

// BudgetPath is the import path of the budget package whose Charge/Check
// methods count as consults.
var BudgetPath = "repro/internal/budget"

// Analyzer is the loopbudget check.
var Analyzer = &analysis.Analyzer{
	Name: "loopbudget",
	Doc:  "data-dependent loop nests (depth >= 2) in kernel packages must consult the shared work budget or the context within the nest: call (*budget.Budget).Charge/Check (or a Worker/Shared view), check ctx.Err/ctx.Done, or delegate to a local helper that does. Constant-trip nests and single loops are exempt.",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !Packages[pass.Pkg.Path()] {
		return nil
	}
	c := &checker{pass: pass, consulters: map[*types.Func]bool{}}
	// Pre-pass: package-local functions that directly consult, so helpers
	// like a chargeStep() called from the loop body count.
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && c.directConsult(fd.Body) {
				c.consulters[fn] = true
			}
		}
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkRegion(fd.Body)
			}
		}
	}
	return nil
}

type checker struct {
	pass       *analysis.Pass
	consulters map[*types.Func]bool
}

// checkRegion finds the outermost loops of one function body. Function
// literals are their own regions: a loop inside a closure is not "nested"
// in the loop that spawned the closure.
func (c *checker) checkRegion(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkRegion(n.Body)
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			c.checkNest(n.(ast.Stmt))
			return false
		}
		return true
	})
}

// checkNest reports the outermost loop of a data-dependent nest of depth
// >= 2 that never consults the budget or context, then descends into any
// function literals so their loops get their own regions.
func (c *checker) checkNest(loop ast.Stmt) {
	depth, dataDep := c.nestShape(loop)
	if depth >= 2 && dataDep && !c.hasConsult(loop) {
		c.pass.Reportf(loop.Pos(), "data-dependent loop nest never consults the work budget or context; call Charge/Check or check ctx within the nest")
	}
	ast.Inspect(loopBody(loop), func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkRegion(lit.Body)
			return false
		}
		return true
	})
}

// nestShape returns the maximum loop-nesting depth rooted at loop (not
// crossing function literals) and whether any loop in that nest is
// data-dependent.
func (c *checker) nestShape(loop ast.Stmt) (depth int, dataDep bool) {
	dataDep = c.dataDependent(loop)
	inner := 0
	ast.Inspect(loopBody(loop), func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			d, dd := c.nestShape(n.(ast.Stmt))
			if d > inner {
				inner = d
			}
			dataDep = dataDep || dd
			return false
		}
		return true
	})
	return inner + 1, dataDep
}

// dataDependent reports whether the loop's trip count can depend on
// runtime data: any range over a non-array, non-constant operand, any for
// without a condition, and any condition without a constant operand.
func (c *checker) dataDependent(loop ast.Stmt) bool {
	switch l := loop.(type) {
	case *ast.RangeStmt:
		tv, ok := c.pass.TypesInfo.Types[l.X]
		if !ok || tv.Type == nil {
			return true
		}
		if tv.Value != nil {
			return false // range over a constant int
		}
		t := tv.Type.Underlying()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem().Underlying()
		}
		_, isArray := t.(*types.Array)
		return !isArray
	case *ast.ForStmt:
		if l.Cond == nil {
			return true
		}
		if be, ok := l.Cond.(*ast.BinaryExpr); ok {
			if c.constOperand(be.X) || c.constOperand(be.Y) {
				return false
			}
		}
		return true
	}
	return true
}

func (c *checker) constOperand(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// hasConsult reports whether node contains a budget/context consult,
// directly or via a package-local consulting helper. Function literals
// count: a consult inside a per-iteration closure still bounds the work.
func (c *checker) hasConsult(node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.isConsultCall(call) {
			found = true
			return false
		}
		if fn := calleeFunc(c.pass.TypesInfo, call); fn != nil && c.consulters[fn] {
			found = true
			return false
		}
		return true
	})
	return found
}

// directConsult reports whether body contains a direct budget/context
// method consult (no helper indirection).
func (c *checker) directConsult(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && c.isConsultCall(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isConsultCall reports whether call is a Charge/Check-family method on a
// budget type or an Err/Done on a context.Context.
func (c *checker) isConsultCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Name() {
	case "Charge", "Check", "Ops", "Remaining", "Err":
		if fn.Pkg().Path() == BudgetPath {
			return true
		}
	}
	switch fn.Name() {
	case "Err", "Done", "Deadline":
		if fn.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}

func loopBody(loop ast.Stmt) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}
