package analysis

import (
	"fmt"
	"go/types"
	"reflect"
)

// A Fact is a typed datum one pass attaches to a package-level object or to
// a whole package so that passes of the same analyzer over *dependent*
// packages can read it back. Facts flow strictly along the import graph:
// the driver analyzes packages in dependency order (see Load), an analyzer
// exports facts while running on the declaring package, and a later pass of
// the same analyzer may import them only if its package transitively
// imports the declaring one. Concrete fact types must be pointers to
// structs and must be listed in the exporting analyzer's FactTypes.
//
// Cross-package object identity is the subtle part of the offline driver:
// when package B references an object declared in package A, B's typecheck
// materializes that object from A's *export data*, so it is not
// pointer-equal to the object A's own source typecheck produced. The store
// therefore keys facts by (package path, stable object path) rather than by
// object identity — see objectPath.
type Fact interface {
	// AFact marks the type as a fact; it has no behavior.
	AFact()
}

// factKey identifies one stored fact: which analyzer produced it, which
// package owns it, which object within that package (empty for package
// facts), and the concrete fact type.
type factKey struct {
	analyzer string
	pkg      string
	object   string
	typ      reflect.Type
}

// factStore is the driver-owned map shared by every pass of one Run call.
type factStore struct {
	m map[factKey]Fact
}

func newFactStore() *factStore { return &factStore{m: map[factKey]Fact{}} }

// objectPath returns a name for obj that is stable across the two ways the
// driver can see the same object: typechecked from source in its declaring
// package, or materialized from export data inside a dependent package.
// Methods are receiver-qualified ("Cache.Put"); everything else is the bare
// package-level name.
func objectPath(obj types.Object) string {
	if f, ok := obj.(*types.Func); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + f.Name()
			}
		}
	}
	return obj.Name()
}

// ExportObjectFact associates fact with obj, which must be declared by the
// pass's own package. Passes of the same analyzer over packages that import
// this one can read it back with ImportObjectFact.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() == nil {
		panic(p.Analyzer.Name + ": ExportObjectFact: object has no package")
	}
	if obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("%s: ExportObjectFact: %s belongs to %s, not to the pass package %s",
			p.Analyzer.Name, obj.Name(), obj.Pkg().Path(), p.Pkg.Path()))
	}
	p.storeFact(p.Pkg.Path(), objectPath(obj), fact)
}

// ImportObjectFact copies into fact (which must be a pointer of the same
// concrete type as the exported fact) the fact previously exported for obj,
// reporting whether one was found. It returns false when obj's package is
// neither the pass's package nor one of its transitive imports: facts only
// flow along the dependency order the driver analyzes in.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path != p.Pkg.Path() && !p.deps[path] {
		return false
	}
	return p.loadFact(path, objectPath(obj), fact)
}

// ExportPackageFact associates fact with the pass's package as a whole.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.storeFact(p.Pkg.Path(), "", fact)
}

// ImportPackageFact copies into fact the package fact previously exported
// for the package with the given import path, reporting whether one was
// found. The path must be the pass's package or a transitive import.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	if path != p.Pkg.Path() && !p.deps[path] {
		return false
	}
	return p.loadFact(path, "", fact)
}

func (p *Pass) storeFact(pkg, object string, fact Fact) {
	if p.facts == nil {
		panic(p.Analyzer.Name + ": fact export outside a driver Run")
	}
	t := p.checkFactType(fact)
	if !p.declaresFactType(t) {
		panic(fmt.Sprintf("%s: fact type %T is not listed in FactTypes", p.Analyzer.Name, fact))
	}
	p.facts.m[factKey{p.Analyzer.Name, pkg, object, t}] = fact
}

func (p *Pass) loadFact(pkg, object string, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	t := p.checkFactType(fact)
	got, ok := p.facts.m[factKey{p.Analyzer.Name, pkg, object, t}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

func (p *Pass) checkFactType(fact Fact) reflect.Type {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("%s: fact %T must be a pointer to a struct", p.Analyzer.Name, fact))
	}
	return t
}

func (p *Pass) declaresFactType(t reflect.Type) bool {
	for _, ft := range p.Analyzer.FactTypes {
		if reflect.TypeOf(ft) == t {
			return true
		}
	}
	return false
}
