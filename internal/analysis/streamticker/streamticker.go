// Package streamticker bans time.After inside loops. Each time.After call
// allocates a fresh timer that is only reclaimed when it fires: a select
// that takes another arm abandons the timer, and in a long-lived stream
// loop — an SSE handler pumping keep-alives, a subscriber draining a
// channel — the abandoned timers pile up for their full duration at every
// iteration. Under a short interval and a busy channel that is an unbounded
// timer population, and even the well-behaved case burns an allocation per
// loop turn where a single Ticker would serve the whole stream (see the
// subscribe loop in internal/server, which this rule pins).
//
// The rule: time.After may not appear lexically inside a for/range
// statement. The sanctioned replacements are
//
//   - time.NewTicker outside the loop, its C selected inside, for periodic
//     work (keep-alives, polls), and
//   - time.NewTimer with Reset, for per-iteration deadlines that genuinely
//     differ, stopped when the loop exits.
//
// One-shot time.After outside a loop is fine — a single timeout arm is the
// call's intended use.
package streamticker

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer is the streamticker check.
var Analyzer = &analysis.Analyzer{
	Name: "streamticker",
	Doc: "time.After inside a loop leaks one timer per iteration; hoist a time.NewTicker " +
		"(or a reusable time.NewTimer with Reset) out of the loop",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		loops := collectLoops(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isTimeAfter(pass, call) {
				return true
			}
			for _, l := range loops {
				if l.pos <= call.Pos() && call.Pos() < l.end {
					pass.Reportf(call.Pos(),
						"time.After inside a loop leaks one timer per iteration; hoist a time.NewTicker (or a reusable time.NewTimer with Reset) out of the loop")
					break
				}
			}
			return true
		})
	}
	return nil
}

type loopSpan struct{ pos, end token.Pos }

func collectLoops(f *ast.File) []loopSpan {
	var spans []loopSpan
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			spans = append(spans, loopSpan{n.Pos(), n.End()})
		}
		return true
	})
	return spans
}

func isTimeAfter(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Resolve through the types info: only the real time.After counts, not
	// a local function that happens to share the name.
	fn := pass.TypesInfo.Uses[sel.Sel]
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "time" && fn.Name() == "After"
}
