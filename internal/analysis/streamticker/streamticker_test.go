package streamticker

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, "../testdata/src/streamtickertest", []*analysis.Analyzer{Analyzer}, nil)
}
