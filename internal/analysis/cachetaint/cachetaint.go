// Package cachetaint defines an Analyzer enforcing the repo's
// never-cache-degraded invariant statically: a verdict value whose Degraded
// field may be true must not reach the riskcache store or its snapshot
// files ungated. The service's disclosure verdicts are cached by content
// digest, so one cached degraded outcome would be replayed to every later
// request for the same release — the invariant is currently upheld by
// convention (server.runCompute returns !o.Degraded as the cacheable flag,
// the snapshot codec skips degraded entries) and by tests that must think
// to exercise it; this analyzer turns it into a whole-program guarantee.
//
// Terms, each carried across package boundaries as a fact:
//
//   - A *carrier* is a named struct type with a `Degraded bool` field
//     (server.Outcome, recipe.Result, ...). Fact: DegradedCarrier.
//   - A *gate* is a function whose results are (V, bool, error) with V a
//     carrier and whose every return either hardwires the bool to false,
//     derives it from a carrier's Degraded field, or delegates — returning
//     or forwarding the results of a single call to another gate. Fact:
//     CacheGate.
//   - A *guard* is a function whose body consults a carrier's Degraded
//     field at all. Fact: DegradedGuard.
//
// Checked sinks (methods of riskcache.Cache):
//
//   - GetOrCompute: a compute argument producing a carrier must be a gate.
//   - Put: storing a carrier is only allowed inside a guard (the caller
//     must have consulted Degraded).
//   - WriteSnapshot/SaveFile: a carrier-encoding callback must be a guard
//     (snapshotEncode's ErrSkipEntry pattern).
//   - ReadSnapshot/LoadFile: a carrier-decoding callback must be a guard
//     (a snapshot file is an input; degraded entries must be rejected on
//     load too).
package cachetaint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/analysis"
)

// CachePath is the import path of the cache package whose methods are the
// guarded sinks. Variable so the fixture tests can retarget it.
var CachePath = "repro/internal/riskcache"

// DegradedCarrier marks a named struct type carrying a `Degraded bool`
// field.
type DegradedCarrier struct{}

// AFact implements analysis.Fact.
func (*DegradedCarrier) AFact() {}

// CacheGate marks a function whose (V, bool, error) results derive the
// cacheable bool from Degraded (or hardwire false) on every return path.
type CacheGate struct{}

// AFact implements analysis.Fact.
func (*CacheGate) AFact() {}

// DegradedGuard marks a function whose body consults a carrier's Degraded
// field.
type DegradedGuard struct{}

// AFact implements analysis.Fact.
func (*DegradedGuard) AFact() {}

// Analyzer is the cachetaint check.
var Analyzer = &analysis.Analyzer{
	Name:      "cachetaint",
	Doc:       "degraded verdicts must not reach riskcache.Cache or its snapshots: compute callbacks passed to GetOrCompute must gate their cacheable result on Degraded (or delegate to a function that does), Put of a degraded-carrying value must sit inside a function that consulted Degraded, and snapshot encode/decode callbacks must check Degraded. Gate and carrier classifications flow across packages as facts.",
	FactTypes: []analysis.Fact{new(DegradedCarrier), new(CacheGate), new(DegradedGuard)},
	Run:       run,
}

type checker struct {
	pass *analysis.Pass
	// localGates holds gate-classified function objects of this package,
	// including unexported ones; package-level gates are also exported as
	// facts for dependent packages.
	localGates  map[*types.Func]bool
	localGuards map[*types.Func]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:        pass,
		localGates:  map[*types.Func]bool{},
		localGuards: map[*types.Func]bool{},
	}

	// Phase 1: export carrier facts for this package's named struct types
	// with a Degraded bool field, so dependent packages can classify
	// values of these types without seeing their source.
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if carrierStruct(tn.Type().Underlying()) {
			pass.ExportObjectFact(tn, &DegradedCarrier{})
		}
	}

	// Phase 2: classify every package-level function (and method) as guard
	// and/or gate. Gate-ness can depend on the gate-ness of a callee
	// declared later in the package, so iterate to a fixed point; each
	// round only adds classifications, so it terminates. Declarations are
	// visited in source order — deterministic, per this suite's own
	// maporder rule.
	decls := c.funcDecls()
	for _, d := range decls {
		if d.decl.Body != nil && c.mentionsDegraded(d.decl.Body) {
			c.localGuards[d.fn] = true
			pass.ExportObjectFact(d.fn, &DegradedGuard{})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if c.localGates[d.fn] || d.decl.Body == nil {
				continue
			}
			if c.gateSignature(d.fn.Type()) && c.gatedBody(d.decl.Body) {
				c.localGates[d.fn] = true
				pass.ExportObjectFact(d.fn, &CacheGate{})
				changed = true
			}
		}
	}

	// Phase 3: check the sinks.
	for _, file := range pass.Files {
		c.checkFuncs(file)
	}
	return nil
}

type funcEntry struct {
	fn   *types.Func
	decl *ast.FuncDecl
}

// funcDecls lists this package's function declarations in source order.
func (c *checker) funcDecls() []funcEntry {
	var out []funcEntry
	for _, file := range c.pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out = append(out, funcEntry{fn, fd})
				}
			}
		}
	}
	return out
}

// carrierStruct reports whether u is a struct with a `Degraded bool` field.
func carrierStruct(u types.Type) bool {
	st, ok := u.(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != "Degraded" {
			continue
		}
		if b, ok := f.Type().(*types.Basic); ok && b.Kind() == types.Bool {
			return true
		}
	}
	return false
}

// isCarrier reports whether t (possibly a pointer) is a degraded-carrying
// named type, via the cross-package fact or, for types whose structure is
// visible, the struct shape itself.
func (c *checker) isCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	var fact DegradedCarrier
	if c.pass.ImportObjectFact(named.Obj(), &fact) {
		return true
	}
	return carrierStruct(named.Underlying())
}

// mentionsDegraded reports whether node contains a selector of a carrier's
// Degraded field — the loose "this code thought about degradation" guard
// criterion used for Put call sites and snapshot callbacks.
func (c *checker) mentionsDegraded(node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Degraded" {
			if c.isCarrier(c.pass.TypesInfo.Types[sel.X].Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// gateSignature reports whether t is func(...) (V, bool, error) with V a
// carrier — the GetOrCompute compute shape.
func (c *checker) gateSignature(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() != 3 {
		return false
	}
	if !c.isCarrier(res.At(0).Type()) {
		return false
	}
	b, ok := res.At(1).Type().(*types.Basic)
	if !ok || b.Kind() != types.Bool {
		return false
	}
	named, ok := types.Unalias(res.At(2).Type()).(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// gatedBody reports whether every return in body (excluding nested function
// literals) is gated: the cacheable result is constant false, derives from
// a Degraded field, is forwarded from a single gate call, or the whole
// return delegates to a gate call.
func (c *checker) gatedBody(body *ast.BlockStmt) bool {
	gated := true
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if !gated {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its returns belong to a different function
		case *ast.ReturnStmt:
			if !c.gatedReturn(n, body) {
				gated = false
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return gated
}

func (c *checker) gatedReturn(ret *ast.ReturnStmt, body *ast.BlockStmt) bool {
	switch len(ret.Results) {
	case 1:
		// return gate(...)
		call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
		return ok && c.isGateCall(call)
	case 3:
		cacheable := ast.Unparen(ret.Results[1])
		if tv, ok := c.pass.TypesInfo.Types[cacheable]; ok && tv.Value != nil {
			return tv.Value.Kind() == constant.Bool && !constant.BoolVal(tv.Value)
		}
		if c.mentionsDegraded(cacheable) {
			return true
		}
		// return v, ok, err where `v, ok, err := gate(...)`.
		if id, ok := cacheable.(*ast.Ident); ok {
			return c.assignedFromGate(id, body)
		}
		return false
	default:
		return false
	}
}

// assignedFromGate reports whether ident's object is bound, somewhere in
// body, as the second variable of a multi-assign from a single gate call.
func (c *checker) assignedFromGate(id *ast.Ident, body *ast.BlockStmt) bool {
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(as.Lhs) != 3 || len(as.Rhs) != 1 {
			return true
		}
		lhs, isIdent := as.Lhs[1].(*ast.Ident)
		if !isIdent {
			return true
		}
		lobj := c.pass.TypesInfo.Defs[lhs]
		if lobj == nil {
			lobj = c.pass.TypesInfo.Uses[lhs]
		}
		if lobj != obj {
			return true
		}
		if call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); isCall && c.isGateCall(call) {
			ok = true
			return false
		}
		return true
	})
	return ok
}

// isGateCall reports whether call invokes a classified gate — a local one
// or one whose CacheGate fact was exported by a dependency.
func (c *checker) isGateCall(call *ast.CallExpr) bool {
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if c.localGates[fn] {
		return true
	}
	var fact CacheGate
	return c.pass.ImportObjectFact(fn, &fact)
}

// isGateExpr reports whether expr (a GetOrCompute compute argument) is a
// gate: a gated function literal or a reference to a gate function.
func (c *checker) isGateExpr(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		return c.gatedBody(e.Body)
	case *ast.Ident, *ast.SelectorExpr:
		fn := referencedFunc(c.pass.TypesInfo, e)
		if fn == nil {
			return false
		}
		if c.localGates[fn] {
			return true
		}
		var fact CacheGate
		return c.pass.ImportObjectFact(fn, &fact)
	}
	return false
}

// isGuardExpr reports whether expr (a snapshot callback argument) is a
// guard: a function literal mentioning Degraded or a reference to a
// classified guard function.
func (c *checker) isGuardExpr(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		return c.mentionsDegraded(e.Body)
	case *ast.Ident, *ast.SelectorExpr:
		fn := referencedFunc(c.pass.TypesInfo, e)
		if fn == nil {
			return false
		}
		if c.localGuards[fn] {
			return true
		}
		var fact DegradedGuard
		return c.pass.ImportObjectFact(fn, &fact)
	}
	return false
}

// calleeFunc resolves the *types.Func a call invokes, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	return referencedFunc(info, ast.Unparen(call.Fun))
}

func referencedFunc(info *types.Info, e ast.Expr) *types.Func {
	switch e := e.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// checkFuncs walks every function body in file, tracking the innermost
// enclosing function so Put's guard criterion has its scope.
func (c *checker) checkFuncs(file *ast.File) {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			c.checkBody(fd.Body)
		}
	}
}

// checkBody checks the sink calls of one function body; nested function
// literals are checked with their own body as the guard scope.
func (c *checker) checkBody(body *ast.BlockStmt) {
	guarded := c.mentionsDegraded(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.checkBody(lit.Body)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.checkSink(call, guarded)
		return true
	})
}

// checkSink reports a diagnostic when call is an ungated riskcache sink.
func (c *checker) checkSink(call *ast.CallExpr, guarded bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, _ := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != CachePath {
		return
	}
	switch fn.Name() {
	case "GetOrCompute":
		if len(call.Args) != 3 {
			return
		}
		compute := call.Args[2]
		if !c.gateSignature(c.exprType(compute)) {
			return // not computing a carrier: out of scope
		}
		if !c.isGateExpr(compute) {
			c.pass.Reportf(compute.Pos(), "compute function can cache a degraded verdict: every return must set the cacheable result to false or !(...).Degraded, or delegate to a gated function")
		}
	case "Put":
		if len(call.Args) != 2 || !c.isCarrier(c.exprType(call.Args[1])) {
			return
		}
		if !guarded {
			c.pass.Reportf(call.Pos(), "degraded-carrying value stored with Put in a function that never consults Degraded")
		}
	case "WriteSnapshot", "SaveFile":
		if len(call.Args) < 2 {
			return
		}
		encode := call.Args[1]
		if !c.encodesCarrier(c.exprType(encode)) {
			return
		}
		if !c.isGuardExpr(encode) {
			c.pass.Reportf(encode.Pos(), "snapshot encoder can write a degraded verdict: check Degraded and return riskcache.ErrSkipEntry")
		}
	case "ReadSnapshot", "LoadFile":
		if len(call.Args) < 2 {
			return
		}
		decode := call.Args[1]
		if !c.decodesCarrier(c.exprType(decode)) {
			return
		}
		if !c.isGuardExpr(decode) {
			c.pass.Reportf(decode.Pos(), "snapshot decoder can load a degraded verdict: check Degraded and reject the entry")
		}
	}
}

func (c *checker) exprType(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// encodesCarrier reports whether t is func(V) (..., error) with V a carrier.
func (c *checker) encodesCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return false
	}
	return c.isCarrier(sig.Params().At(0).Type())
}

// decodesCarrier reports whether t is func(...) (V, bool, error) with V a
// carrier — the ReadSnapshot decode shape.
func (c *checker) decodesCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	return c.gateSignature(t)
}
