package cachetaint_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cachetaint"
)

// TestCachetaint loads the dependent fixture together with its dependency
// so the dep's carrier/gate facts are exported first and imported across
// the package boundary, exactly as the driver runs the real tree.
func TestCachetaint(t *testing.T) {
	analysistest.RunPatterns(t, "../testdata/src/cachetainttest",
		[]string{".", "../cachetaintdep"},
		[]*analysis.Analyzer{cachetaint.Analyzer}, nil)
}
