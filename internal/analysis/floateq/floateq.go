// Package floateq enforces the eps-comparison convention on the
// float-interval kernel (DESIGN.md §10.3): frequencies and interval
// endpoints are float64s produced by division, so exact equality is
// meaningless at the boundaries the paper's semantics care about — the
// PR 3 groupRange bug was precisely a hand-rolled comparison at Hi+ε.
// All equality-style decisions must go through the approved eps helpers
// (belief.Interval.Contains/Within/IsPoint, belief.EqualEps, and the
// helpers listed in Approved).
//
// Checks, in the interval packages (bipartite, belief):
//
//  1. `==` / `!=` between float64 operands is flagged outside approved
//     helper functions. The NaN self-test `x != x` is allowed.
//  2. sort.SearchFloat64s is flagged outside approved helpers: its ≥
//     semantics silently excludes values lying within ε of the probe —
//     the exact shape of the historical off-by-ε — so every binary search
//     over frequencies must live in a helper that widens by ε.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Packages holds the import paths the eps convention covers.
var Packages = map[string]bool{
	"repro/internal/bipartite": true,
	"repro/internal/belief":    true,
}

// Approved names the eps-helper functions (by unqualified name) whose
// bodies may compare floats exactly and call sort.SearchFloat64s: they are
// the single place the ε-widening lives, covered by boundary tests.
var Approved = map[string]bool{
	"groupRange": true, // bipartite: the ε-widened frequency range lookup
	"EqualEps":   true, // belief: |a-b| ≤ ε equality
	"Contains":   true, // belief.Interval / belief.Function containment
	"IsPoint":    true,
	"Within":     true,
}

// Analyzer is the floateq check.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "float64 frequency/interval comparisons must use the eps helpers; " +
		"== / != and sort.SearchFloat64s outside them reintroduce off-by-ε bugs",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !Packages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || Approved[fn.Name.Name] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.BinaryExpr:
					checkCompare(pass, nn)
				case *ast.CallExpr:
					checkSearch(pass, nn)
				}
				return true
			})
		}
	}
	return nil
}

func checkCompare(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if !isFloat(pass, b.X) || !isFloat(pass, b.Y) {
		return
	}
	// x != x is the portable NaN test; it cannot be off by ε.
	if b.Op == token.NEQ && types.ExprString(b.X) == types.ExprString(b.Y) {
		return
	}
	pass.Reportf(b.OpPos,
		"%s on float64 values: frequencies and interval endpoints carry rounding error; use an eps helper (belief.EqualEps, Interval.Contains/Within)",
		b.Op)
}

func checkSearch(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sort" || obj.Name() != "SearchFloat64s" {
		return
	}
	pass.Reportf(call.Pos(),
		"sort.SearchFloat64s outside an approved eps helper: its ≥ probe drops values within ε of the boundary (the PR 3 groupRange bug); wrap the search in a helper that widens by belief.Epsilon")
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
