package floateq

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestFixture(t *testing.T) {
	const fixture = "repro/internal/analysis/testdata/src/floateqtest"
	Packages[fixture] = true
	defer delete(Packages, fixture)
	analysistest.Run(t, "../testdata/src/floateqtest", []*analysis.Analyzer{Analyzer}, nil)
}
