package analysis

import (
	"go/token"
	"strings"
)

// An Allow is one parsed //lint:allow suppression comment.
//
// The grammar is
//
//	//lint:allow <check> <reason...>
//
// and the comment suppresses diagnostics of analyzer <check> reported on the
// comment's own line or on the line immediately below it (so both the
// inline and the comment-above idioms work). The reason is mandatory: a
// suppression without a recorded justification fails the gate, as does a
// stale suppression that no longer matches any diagnostic — otherwise
// allows would accrete long after the code they excused is gone.
type Allow struct {
	File   string
	Line   int
	Check  string
	Reason string
	Pos    token.Pos

	used bool
}

const allowPrefix = "//lint:allow"

// collectAllows parses every //lint:allow comment in the package's files.
func collectAllows(pkg *Package) []*Allow {
	var allows []*Allow
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				check, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				allows = append(allows, &Allow{
					File:   pos.Filename,
					Line:   pos.Line,
					Check:  check,
					Reason: strings.TrimSpace(reason),
					Pos:    c.Pos(),
				})
			}
		}
	}
	return allows
}

// applyAllows filters diags through the package's suppression comments and
// appends a diagnostic for every malformed, unknown-check, or stale allow.
// known maps analyzer names that ran on this package to true.
func applyAllows(pkg *Package, diags []Diagnostic, allows []*Allow, known map[string]bool) []Diagnostic {
	var kept []Diagnostic
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		suppressed := false
		for _, a := range allows {
			if a.Check != d.Check || a.File != pos.Filename {
				continue
			}
			// Inline (same line) or comment-above (line directly before).
			if a.Line == pos.Line || a.Line == pos.Line-1 {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		switch {
		case a.Check == "":
			kept = append(kept, Diagnostic{
				Pos:     a.Pos,
				Check:   "suppress",
				Message: "malformed //lint:allow: want //lint:allow <check> <reason>",
			})
		case !known[a.Check]:
			kept = append(kept, Diagnostic{
				Pos:     a.Pos,
				Check:   "suppress",
				Message: "//lint:allow names unknown check " + a.Check,
			})
		case a.Reason == "":
			kept = append(kept, Diagnostic{
				Pos:     a.Pos,
				Check:   "suppress",
				Message: "//lint:allow " + a.Check + " has no reason; a suppression must say why",
			})
		case !a.used:
			kept = append(kept, Diagnostic{
				Pos:     a.Pos,
				Check:   "suppress",
				Message: "stale //lint:allow " + a.Check + ": no diagnostic on this or the next line; delete it",
			})
		}
	}
	return kept
}
