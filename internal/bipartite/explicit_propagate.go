package bipartite

import (
	"context"
	"fmt"

	"repro/internal/budget"
)

// Propagate runs the degree-1 propagation of Figure 7 on an explicit graph:
// any vertex (on either side) with exactly one remaining neighbour has its
// edge in every perfect matching; the pair is removed and degrees updated, to
// a fixed point. It mirrors Graph.Propagate for graphs that are not
// interval-structured — e.g. the relational consistency graphs of
// Section 8.1. ErrInfeasible is returned when a vertex runs out of
// neighbours (or starts with none).
func (e *Explicit) Propagate() (*Propagation, error) {
	return e.PropagateCtx(context.Background())
}

// PropagateCtx is Propagate under a work budget: one operation per worklist
// pop (each pop rescans one vertex's adjacency), so a pathological cascade
// over a dense explicit graph can be cut off by a deadline or op limit.
func (e *Explicit) PropagateCtx(ctx context.Context) (*Propagation, error) {
	n := e.N
	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return nil, err
	}
	aliveL := make([]bool, n) // anonymized side
	aliveR := make([]bool, n) // original side
	degL := make([]int, n)
	degR := make([]int, n)
	// Reverse adjacency for the right side.
	radj := make([][]int, n)
	for w := 0; w < n; w++ {
		if err := bud.Check(); err != nil {
			return nil, err
		}
		aliveL[w] = true
		aliveR[w] = true
		degL[w] = len(e.Adj[w])
		for _, x := range e.Adj[w] {
			radj[x] = append(radj[x], w)
			degR[x]++
		}
	}
	res := &Propagation{Outdeg: make([]int, n)}
	matchedL := make([]bool, n)
	matchedR := make([]bool, n)

	queue := make([]int, 0, 2*n) // encoded: w for left, n+x for right
	for v := 0; v < n; v++ {
		if degL[v] <= 1 {
			queue = append(queue, v)
		}
		if degR[v] <= 1 {
			queue = append(queue, n+v)
		}
	}

	force := func(w, x int) {
		res.Forced = append(res.Forced, ForcedPair{Anon: w, Item: x})
		res.Outdeg[x] = 1
		aliveL[w] = false
		aliveR[x] = false
		matchedL[w] = true
		matchedR[x] = true
		for _, y := range e.Adj[w] {
			if aliveR[y] {
				degR[y]--
				if degR[y] <= 1 {
					queue = append(queue, n+y)
				}
			}
		}
		for _, v := range radj[x] {
			if aliveL[v] {
				degL[v]--
				if degL[v] <= 1 {
					queue = append(queue, v)
				}
			}
		}
	}

	for len(queue) > 0 {
		if err := bud.Charge(1); err != nil {
			return nil, fmt.Errorf("bipartite: explicit propagation: %w", err)
		}
		enc := queue[0]
		queue = queue[1:]
		if enc < n {
			w := enc
			if !aliveL[w] {
				continue
			}
			d, last := 0, -1
			for _, x := range e.Adj[w] {
				if aliveR[x] {
					d++
					last = x
				}
			}
			if d == 0 {
				return nil, ErrInfeasible
			}
			if d == 1 {
				force(w, last)
			}
		} else {
			x := enc - n
			if !aliveR[x] {
				continue
			}
			d, last := 0, -1
			for _, w := range radj[x] {
				if aliveL[w] {
					d++
					last = w
				}
			}
			if d == 0 {
				return nil, ErrInfeasible
			}
			if d == 1 {
				force(last, x)
			}
		}
	}

	res.Rounds = 1 // worklist formulation: a single logical pass to fixpoint
	for x := 0; x < n; x++ {
		if err := bud.Check(); err != nil {
			return nil, err
		}
		if matchedR[x] {
			continue
		}
		d := 0
		for _, w := range radj[x] {
			if aliveL[w] {
				d++
			}
		}
		res.Outdeg[x] = d
	}
	return res, nil
}
