package bipartite

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/budget"
)

// Propagate runs the degree-1 propagation of Figure 7 on an explicit graph:
// any vertex (on either side) with exactly one remaining neighbour has its
// edge in every perfect matching; the pair is removed and degrees updated, to
// a fixed point. It mirrors Graph.Propagate for graphs that are not
// interval-structured — e.g. the relational consistency graphs of
// Section 8.1. ErrInfeasible is returned when a vertex runs out of
// neighbours (or starts with none).
func (e *Explicit) Propagate() (*Propagation, error) {
	return e.PropagateCtx(context.Background())
}

// PropagateCtx is Propagate under a work budget: one operation per worklist
// pop, so a pathological cascade over a dense explicit graph can be cut off
// by a deadline or op limit.
//
// The sweeps run word-parallel (DESIGN.md §16): the adjacency is packed into
// row and column bit matrices, the alive sets into word vectors, and every
// degree rescan is an AND+popcount over ⌈n/64⌉ words instead of a branch per
// edge. Stride indexing keeps each vertex's row contiguous, so a rescan is a
// straight-line word loop.
func (e *Explicit) PropagateCtx(ctx context.Context) (*Propagation, error) {
	n := e.N
	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return nil, err
	}
	nw := bitset.WordsFor(n)
	// rowBits[w*nw : (w+1)*nw] packs Adj[w] over right vertices; colBits is
	// the transpose. aliveL/aliveR start full.
	rowBits := make([]uint64, n*nw)
	colBits := make([]uint64, n*nw)
	aliveL := bitset.New(n)
	aliveR := bitset.New(n)
	aliveL.Fill()
	aliveR.Fill()
	alW, arW := aliveL.Words(), aliveR.Words()
	degL := make([]int, n)
	degR := make([]int, n)
	for w := 0; w < n; w++ {
		if err := bud.Check(); err != nil {
			return nil, err
		}
		degL[w] = len(e.Adj[w])
		row := rowBits[w*nw : (w+1)*nw]
		for _, x := range e.Adj[w] {
			row[x>>6] |= 1 << uint(x&63)
			colBits[x*nw+(w>>6)] |= 1 << uint(w&63)
			degR[x]++
		}
	}
	res := &Propagation{Outdeg: make([]int, n)}
	matchedR := bitset.New(n)

	queue := make([]int, 0, 2*n) // encoded: w for left, n+x for right
	for v := 0; v < n; v++ {
		if degL[v] <= 1 {
			queue = append(queue, v)
		}
		if degR[v] <= 1 {
			queue = append(queue, n+v)
		}
	}

	// countAlive rescans one packed row against an alive vector: total
	// popcount and, for the degree-1 case the caller acts on, the unique
	// surviving neighbour.
	countAlive := func(row, alive []uint64) (d, last int) {
		last = -1
		for k, rw := range row {
			if m := rw & alive[k]; m != 0 {
				d += bits.OnesCount64(m)
				last = k<<6 + bits.TrailingZeros64(m)
			}
		}
		return d, last
	}

	force := func(w, x int) {
		res.Forced = append(res.Forced, ForcedPair{Anon: w, Item: x})
		res.Outdeg[x] = 1
		aliveL.Remove(w)
		aliveR.Remove(x)
		matchedR.Add(x)
		row := rowBits[w*nw : (w+1)*nw]
		//lint:allow loopbudget amortized O(1) per edge: each neighbour's degree drops at most once per forced pair across the whole fixpoint, and the queue loop charges per pop
		for k, rw := range row {
			m := rw & arW[k]
			base := k << 6
			for ; m != 0; m &= m - 1 {
				y := base + bits.TrailingZeros64(m)
				degR[y]--
				if degR[y] <= 1 {
					queue = append(queue, n+y)
				}
			}
		}
		col := colBits[x*nw : (x+1)*nw]
		//lint:allow loopbudget amortized O(1) per edge: same argument as the row sweep above
		for k, cw := range col {
			m := cw & alW[k]
			base := k << 6
			for ; m != 0; m &= m - 1 {
				v := base + bits.TrailingZeros64(m)
				degL[v]--
				if degL[v] <= 1 {
					queue = append(queue, v)
				}
			}
		}
	}

	for len(queue) > 0 {
		if err := bud.Charge(1); err != nil {
			return nil, fmt.Errorf("bipartite: explicit propagation: %w", err)
		}
		enc := queue[0]
		queue = queue[1:]
		if enc < n {
			w := enc
			if !aliveL.Contains(w) {
				continue
			}
			d, last := countAlive(rowBits[w*nw:(w+1)*nw], arW)
			if d == 0 {
				return nil, ErrInfeasible
			}
			if d == 1 {
				force(w, last)
			}
		} else {
			x := enc - n
			if !aliveR.Contains(x) {
				continue
			}
			d, last := countAlive(colBits[x*nw:(x+1)*nw], alW)
			if d == 0 {
				return nil, ErrInfeasible
			}
			if d == 1 {
				force(last, x)
			}
		}
	}

	res.Rounds = 1 // worklist formulation: a single logical pass to fixpoint
	for x := 0; x < n; x++ {
		if err := bud.Check(); err != nil {
			return nil, err
		}
		if matchedR.Contains(x) {
			continue
		}
		d, _ := countAlive(colBits[x*nw:(x+1)*nw], alW)
		res.Outdeg[x] = d
	}
	return res, nil
}
