package bipartite

import (
	"context"
	"math/rand"

	"repro/internal/budget"
)

// RasmussenEstimate runs Rasmussen's simple unbiased randomized estimator for
// the permanent of a 0/1 matrix (Random Structures and Algorithms, 1994 —
// reference [21] of the paper) and returns the mean of `runs` independent
// estimates.
//
// One run proceeds row by row: pick a uniformly random admissible column for
// the current row among the still-free ones, multiplying the estimate by the
// number of admissible choices; a stuck run contributes 0. The estimator is
// unbiased but can have enormous variance — the paper dismisses known
// approximation schemes as impractical (the Jerrum–Sinclair–Vigoda FPRAS runs
// in ~O(n²²)); this estimator is included so that the comparison with the
// O-estimate can be reproduced.
func RasmussenEstimate(e *Explicit, runs int, rng *rand.Rand) float64 {
	v, _ := RasmussenEstimateCtx(context.Background(), e, runs, rng)
	return v
}

// RasmussenEstimateCtx is RasmussenEstimate under a work budget: one
// operation per scanned row, checked once per budget window. On exhaustion
// it returns the mean over the runs completed so far together with the
// budget error, so callers can keep the partial estimate when degrading.
func RasmussenEstimateCtx(ctx context.Context, e *Explicit, runs int, rng *rand.Rand) (float64, error) {
	if runs <= 0 {
		runs = 1
	}
	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return 0, err
	}
	total := 0.0
	used := make([]bool, e.N)
	free := make([]int, 0, e.N)
	for r := 0; r < runs; r++ {
		for i := range used {
			used[i] = false
		}
		est := 1.0
		for w := 0; w < e.N && est > 0; w++ {
			if err := bud.Charge(1); err != nil {
				if r > 0 {
					return total / float64(r), err
				}
				return 0, err
			}
			free = free[:0]
			for _, x := range e.Adj[w] {
				if !used[x] {
					free = append(free, x)
				}
			}
			if len(free) == 0 {
				est = 0
				break
			}
			est *= float64(len(free))
			used[free[rng.Intn(len(free))]] = true
		}
		total += est
	}
	return total / float64(runs), nil
}
