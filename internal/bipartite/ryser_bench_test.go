package bipartite

// Microbenchmark of the Gray-code Ryser permanent against the 2^n-table
// subset DP it replaced as the counting backend. Both implementations stay
// in the package (the DP doubles as Ryser's correctness oracle and still
// powers the table-based routines), so the before/after is always
// reproducible on the current build.

import (
	"math/rand"
	"strconv"
	"testing"
)

func permanentBench(b *testing.B, n int, count func(e *Explicit) error) {
	rng := rand.New(rand.NewSource(11))
	e := RandomExplicit(n, 0.4, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := count(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPermanent(b *testing.B) {
	for _, n := range []int{12, 16, 20} {
		b.Run("impl=ryser/n="+strconv.Itoa(n), func(b *testing.B) {
			permanentBench(b, n, func(e *Explicit) error {
				_, err := e.countPerfectMatchingsRyser(nil, nil)
				return err
			})
		})
		if n > 16 {
			continue // the DP's 2^n big.Int table is minutes-scale past n=16
		}
		b.Run("impl=dp/n="+strconv.Itoa(n), func(b *testing.B) {
			permanentBench(b, n, func(e *Explicit) error {
				_, err := e.countPerfectMatchings(nil)
				return err
			})
		})
	}
}
