package bipartite

import (
	"math"
	"math/rand"
	"testing"
)

func TestExactSamplerCountMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		e := RandomExplicit(n, 0.5, rng)
		want, err := e.CountPerfectMatchings()
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewExactSampler(e)
		if want.Sign() == 0 {
			if err != ErrInfeasible {
				t.Fatalf("trial %d: want ErrInfeasible, got %v", trial, err)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if s.Count().Cmp(want) != 0 {
			t.Fatalf("trial %d: Count %v, want %v", trial, s.Count(), want)
		}
	}
	if _, err := NewExactSampler(Complete(MaxExactN + 1)); err == nil {
		t.Error("oversized graph: want error")
	}
}

func TestExactSamplerValidMatchings(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	e := RandomExplicit(7, 0.4, rng)
	s, err := NewExactSampler(e)
	if err != nil {
		t.Skip("random graph infeasible for this seed")
	}
	for k := 0; k < 200; k++ {
		m := s.Sample(rng)
		used := make([]bool, e.N)
		for w, x := range m {
			if used[x] || !e.HasEdge(w, x) {
				t.Fatalf("sample %d invalid: %v", k, m)
			}
			used[x] = true
		}
	}
}

func TestExactSamplerUniform(t *testing.T) {
	// Enumerate all matchings of a small graph and chi-square the sampler's
	// empirical frequencies against uniform.
	rng := rand.New(rand.NewSource(79))
	e := MustExplicit(4, [][]int{{0, 1, 2}, {0, 1, 3}, {1, 2, 3}, {0, 2, 3}})
	var keys []string
	index := map[string]int{}
	if err := e.EnumeratePerfectMatchings(0, func(m []int) {
		k := matchKey(m)
		index[k] = len(keys)
		keys = append(keys, k)
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) < 4 {
		t.Fatalf("test graph too rigid: %d matchings", len(keys))
	}
	s, err := NewExactSampler(e)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 30000
	hits := make([]int, len(keys))
	for k := 0; k < draws; k++ {
		hits[index[matchKey(s.Sample(rng))]]++
	}
	want := float64(draws) / float64(len(keys))
	chi2 := 0.0
	for _, h := range hits {
		d := float64(h) - want
		chi2 += d * d / want
	}
	// ~len(keys)-1 degrees of freedom; allow a generous bound.
	if limit := 4.0 * float64(len(keys)); chi2 > limit {
		t.Errorf("chi² = %v over %d outcomes (limit %v): not uniform", chi2, len(keys), limit)
	}
}

func matchKey(m []int) string {
	b := make([]byte, len(m))
	for i, x := range m {
		b[i] = byte('a' + x)
	}
	return string(b)
}

func TestExactSamplerCrackExpectation(t *testing.T) {
	// The empirical crack mean from exact samples must match the
	// permanent-based expectation — and so must the MCMC sampler (tested in
	// internal/matching); this anchors the whole simulation chain.
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 5; trial++ {
		n := 4 + rng.Intn(4)
		e := RandomExplicit(n, 0.5, rng)
		s, err := NewExactSampler(e)
		if err != nil {
			continue
		}
		probs, err := e.EdgeInclusionProbability()
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for x := 0; x < n; x++ {
			want += probs[x][x]
		}
		const draws = 20000
		total := 0
		for k := 0; k < draws; k++ {
			for w, x := range s.Sample(rng) {
				if w == x {
					total++
				}
			}
		}
		got := float64(total) / draws
		if math.Abs(got-want) > 0.08 {
			t.Errorf("trial %d: empirical E(X) %v, exact %v", trial, got, want)
		}
	}
}
