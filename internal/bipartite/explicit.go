package bipartite

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/budget"
)

// Explicit is an explicit bipartite graph over n anonymized items (left) and
// n original items (right), stored as adjacency lists. It is the
// representation used by the exact, exponential-cost algorithms of the direct
// method (Section 4.1) and by small worked examples; large graphs should stay
// in the compact Graph form.
type Explicit struct {
	N   int
	Adj [][]int // Adj[w] = sorted list of items x with an edge (w′, x)
}

// NewExplicit builds an explicit graph from raw adjacency lists. Lists are
// copied; vertex ids must be in [0, n) and rows must not repeat an edge
// (duplicates would corrupt degree-based algorithms like propagation).
//
//lint:allow ctxbudget one linear validation pass over the edge list; no superlinear work
func NewExplicit(n int, adj [][]int) (*Explicit, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bipartite: explicit graph size %d, want > 0", n)
	}
	if len(adj) != n {
		return nil, fmt.Errorf("bipartite: adjacency has %d rows, want %d", len(adj), n)
	}
	e := &Explicit{N: n, Adj: make([][]int, n)}
	seen := make([]int, n) // seen[x] = w+1 when (w,x) already added
	//lint:allow loopbudget one linear validation pass over the edge list, per the ctxbudget allow above
	for w, row := range adj {
		e.Adj[w] = append([]int(nil), row...)
		for _, x := range row {
			if x < 0 || x >= n {
				return nil, fmt.Errorf("bipartite: edge (%d,%d) out of range", w, x)
			}
			if seen[x] == w+1 {
				return nil, fmt.Errorf("bipartite: duplicate edge (%d,%d)", w, x)
			}
			seen[x] = w + 1
		}
	}
	return e, nil
}

// MustExplicit is NewExplicit, panicking on error.
func MustExplicit(n int, adj [][]int) *Explicit {
	e, err := NewExplicit(n, adj)
	if err != nil {
		panic(err)
	}
	return e
}

// ToExplicit expands the compact graph into explicit adjacency lists.
// The edge set can be quadratic; intended for small domains only.
//
//lint:allow ctxbudget a straight copy bounded by the output edge set it allocates anyway
func (g *Graph) ToExplicit() *Explicit {
	n := g.Items()
	e := &Explicit{N: n, Adj: make([][]int, n)}
	//lint:allow loopbudget bounded by the output edge set it allocates anyway, per the ctxbudget allow above
	for w := 0; w < n; w++ {
		gw := g.ItemGroup[w]
		for x := 0; x < n; x++ {
			if g.ItemLo[x] <= gw && gw <= g.ItemHi[x] {
				e.Adj[w] = append(e.Adj[w], x)
			}
		}
	}
	return e
}

// HasEdge reports whether the edge (w′, x) is present.
func (e *Explicit) HasEdge(w, x int) bool {
	for _, y := range e.Adj[w] {
		if y == x {
			return true
		}
	}
	return false
}

// NumEdges returns the total number of edges.
func (e *Explicit) NumEdges() int {
	total := 0
	for _, row := range e.Adj {
		total += len(row)
	}
	return total
}

// Minor returns the graph with left vertex w and right vertex x removed,
// relabeling remaining vertices to stay dense. It is the building block of
// the permanent-minor expansion used for exact expected cracks.
//
//lint:allow ctxbudget a straight copy of the edge list; the exponential caller (permanent) is budgeted
func (e *Explicit) Minor(w, x int) *Explicit {
	m := &Explicit{N: e.N - 1, Adj: make([][]int, e.N-1)}
	ri := 0
	//lint:allow loopbudget straight copy of the edge list; the exponential caller (permanent) is budgeted
	for i := 0; i < e.N; i++ {
		if i == w {
			continue
		}
		for _, j := range e.Adj[i] {
			if j == x {
				continue
			}
			nj := j
			if j > x {
				nj--
			}
			m.Adj[ri] = append(m.Adj[ri], nj)
		}
		ri++
	}
	return m
}

// DeleteEdge returns a copy of the graph with the edge (w′, x) removed.
//
//lint:allow ctxbudget a straight copy of the edge list; the exponential caller (permanent) is budgeted
func (e *Explicit) DeleteEdge(w, x int) *Explicit {
	m := &Explicit{N: e.N, Adj: make([][]int, e.N)}
	//lint:allow loopbudget straight copy of the edge list; the exponential caller (permanent) is budgeted
	for i := 0; i < e.N; i++ {
		for _, j := range e.Adj[i] {
			if i == w && j == x {
				continue
			}
			m.Adj[i] = append(m.Adj[i], j)
		}
	}
	return m
}

// Complete returns the complete bipartite graph K_{n,n}, the mapping space of
// the ignorant belief function (Section 3.1).
func Complete(n int) *Explicit {
	e := &Explicit{N: n, Adj: make([][]int, n)}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	for w := 0; w < n; w++ {
		e.Adj[w] = append([]int(nil), all...)
	}
	return e
}

// RandomExplicit generates a random bipartite graph on n+n vertices where
// each edge appears independently with probability p, always including the
// diagonal (w′, w) so that the identity matching exists (i.e. the graph is
// "compliant"). Used by property tests to cross-validate estimators.
//
//lint:allow ctxbudget test-data generator over n² coin flips, used on tiny n by property tests
func RandomExplicit(n int, p float64, rng *rand.Rand) *Explicit {
	e := &Explicit{N: n, Adj: make([][]int, n)}
	//lint:allow loopbudget test-data generator over n² coin flips on tiny n, per the ctxbudget allow above
	for w := 0; w < n; w++ {
		for x := 0; x < n; x++ {
			if w == x || rng.Float64() < p {
				e.Adj[w] = append(e.Adj[w], x)
			}
		}
	}
	return e
}

// MaximumMatching computes a maximum matching via the Hopcroft–Karp
// algorithm, returning (size, matchL, matchR) where matchL[w] is the item
// matched to anonymized item w (or -1) and matchR[x] the reverse.
func (e *Explicit) MaximumMatching() (int, []int, []int) {
	size, matchL, matchR, _ := e.MaximumMatchingCtx(context.Background())
	return size, matchL, matchR
}

// MaximumMatchingCtx is MaximumMatching under a work budget, charging one
// phase's worth of edge scans per Hopcroft–Karp phase (there are at most
// O(√n) of them, but each touches every edge).
func (e *Explicit) MaximumMatchingCtx(ctx context.Context) (int, []int, []int, error) {
	const inf = int(^uint(0) >> 1)
	bud := budget.New(ctx, budget.Config{})
	phaseCost := int64(e.NumEdges() + e.N + 1)
	if err := bud.Check(); err != nil {
		return 0, nil, nil, err
	}
	matchL := make([]int, e.N)
	matchR := make([]int, e.N)
	for i := range matchL {
		matchL[i] = -1
		matchR[i] = -1
	}
	dist := make([]int, e.N)
	queue := make([]int, 0, e.N)

	bfs := func() bool {
		queue = queue[:0]
		for w := 0; w < e.N; w++ {
			if matchL[w] == -1 {
				dist[w] = 0
				queue = append(queue, w)
			} else {
				dist[w] = inf
			}
		}
		found := false
		//lint:allow loopbudget the phase loop below charges phaseCost (every edge) per bfs/dfs phase; charging inside would double-count
		for qi := 0; qi < len(queue); qi++ {
			w := queue[qi]
			for _, x := range e.Adj[w] {
				nw := matchR[x]
				if nw == -1 {
					found = true
				} else if dist[nw] == inf {
					dist[nw] = dist[w] + 1
					queue = append(queue, nw)
				}
			}
		}
		return found
	}
	var dfs func(w int) bool
	dfs = func(w int) bool {
		for _, x := range e.Adj[w] {
			nw := matchR[x]
			if nw == -1 || (dist[nw] == dist[w]+1 && dfs(nw)) {
				matchL[w] = x
				matchR[x] = w
				return true
			}
		}
		dist[w] = inf
		return false
	}

	size := 0
	for bfs() {
		if err := bud.Charge(phaseCost); err != nil {
			return 0, nil, nil, fmt.Errorf("bipartite: maximum matching: %w", err)
		}
		for w := 0; w < e.N; w++ {
			if matchL[w] == -1 && dfs(w) {
				size++
			}
		}
	}
	return size, matchL, matchR, nil
}

// HasPerfectMatching reports whether a perfect matching exists.
func (e *Explicit) HasPerfectMatching() bool {
	size, _, _ := e.MaximumMatching()
	return size == e.N
}
