package bipartite

import (
	"context"
	"fmt"
	"math/big"
	"math/bits"

	"repro/internal/budget"
)

// MaxExactN caps the size of graphs accepted by the exact counting
// routines. Counting perfect matchings is #P-complete (Valiant 1979, [25] in
// the paper); the Gray-code Ryser kernel (ryser.go) costs O(2^n · n) machine
// words and O(n) memory, which is practical to about n = 30.
const MaxExactN = 30

// MaxExactTableN caps the algorithms that materialize the O(2^n) subset-DP
// table of big.Ints (edge-inclusion probabilities, the exact sampler): past
// ~24 the table alone dominates a serving process's memory, even though the
// O(n)-memory Ryser counting continues to n = MaxExactN.
const MaxExactTableN = 24

// CountPerfectMatchings returns the number of perfect matchings of the graph
// — the permanent of its biadjacency matrix — computed exactly by Ryser's
// formula with Gray-code subset updates (ryser.go). It returns an error when
// e.N > MaxExactN.
func (e *Explicit) CountPerfectMatchings() (*big.Int, error) {
	return e.CountPerfectMatchingsCtx(context.Background())
}

// CountPerfectMatchingsCtx is CountPerfectMatchings under a work budget: the
// context's deadline and any budget.WithMaxOps operation limit are checked
// once per budget window of Gray-code steps, so cancellation aborts the
// exponential computation promptly instead of hanging a serving process.
func (e *Explicit) CountPerfectMatchingsCtx(ctx context.Context) (*big.Int, error) {
	if e.N > MaxExactN {
		return nil, fmt.Errorf("bipartite: exact count needs n <= %d, got %d", MaxExactN, e.N)
	}
	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return nil, err
	}
	return e.countPerfectMatchingsRyser(bud, nil)
}

// Permanent is an alias for CountPerfectMatchings, matching the paper's
// terminology for the direct method of Section 4.1.
func (e *Explicit) Permanent() (*big.Int, error) { return e.CountPerfectMatchings() }

// EdgeInclusionProbability returns, for each edge (w′, x), the probability
// that a uniformly random perfect matching contains it:
// perm(minor(w, x)) / perm(A). Entries for absent edges are 0. It returns an
// error if the graph is too large or admits no perfect matching.
//
// One subset-DP per left vertex suffices: fixing w′ ↦ x means matching the
// remaining left vertices to the remaining right vertices, so all minors that
// share the removed left vertex come from a single DP table.
func (e *Explicit) EdgeInclusionProbability() ([][]float64, error) {
	return e.EdgeInclusionProbabilityCtx(context.Background())
}

// EdgeInclusionProbabilityCtx is EdgeInclusionProbability under a work
// budget. The n+1 subset DPs it runs share one budget, so an operation limit
// bounds the whole computation, not each table. Because each DP materializes
// a 2^n table, n is capped at MaxExactTableN, tighter than the MaxExactN the
// table-free counting routines accept; callers that only need the diagonal
// should use DiagonalMatchingCountsCtx, which runs to MaxExactN.
func (e *Explicit) EdgeInclusionProbabilityCtx(ctx context.Context) ([][]float64, error) {
	if e.N > MaxExactTableN {
		return nil, fmt.Errorf("bipartite: exact count needs n <= %d, got %d", MaxExactTableN, e.N)
	}
	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return nil, err
	}
	total, err := e.countPerfectMatchings(bud)
	if err != nil {
		return nil, err
	}
	if total.Sign() == 0 {
		return nil, ErrInfeasible
	}
	tot := new(big.Float).SetInt(total)
	out := make([][]float64, e.N)
	for w := 0; w < e.N; w++ {
		out[w] = make([]float64, e.N)
		counts, err := e.matchingCountsFixingLeft(w, bud)
		if err != nil {
			return nil, err
		}
		for _, x := range e.Adj[w] {
			q := new(big.Float).Quo(new(big.Float).SetInt(counts[x]), tot)
			out[w][x], _ = q.Float64()
		}
	}
	return out, nil
}

// countPerfectMatchings is the budgeted subset-DP permanent. The serving
// path counts with the Gray-code Ryser kernel instead; the DP survives as
// the independent oracle the Ryser kernel is pinned against (ryser_test.go)
// and as the shared building block of the table-based routines below. bud
// may be nil for unbudgeted use.
func (e *Explicit) countPerfectMatchings(bud *budget.Budget) (*big.Int, error) {
	n := e.N
	size := 1 << uint(n)
	dp := make([]*big.Int, size)
	dp[0] = big.NewInt(1)
	for s := 1; s < size; s++ {
		if err := bud.Charge(1); err != nil {
			return nil, fmt.Errorf("bipartite: counting perfect matchings: %w", err)
		}
		row := bits.OnesCount(uint(s)) - 1
		acc := new(big.Int)
		for _, x := range e.Adj[row] {
			bit := 1 << uint(x)
			if s&bit != 0 && dp[s^bit] != nil && dp[s^bit].Sign() > 0 {
				acc.Add(acc, dp[s^bit])
			}
		}
		dp[s] = acc
	}
	return dp[size-1], nil
}

// matchingCountsFixingLeft returns, for each right vertex x adjacent to left
// vertex w, the number of perfect matchings of the graph that contain the
// edge (w′, x). Non-adjacent entries are zero.
func (e *Explicit) matchingCountsFixingLeft(w int, bud *budget.Budget) ([]*big.Int, error) {
	n := e.N
	// DP over the left vertices excluding w, in order.
	rows := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != w {
			rows = append(rows, i)
		}
	}
	size := 1 << uint(n)
	dp := make([]*big.Int, size)
	dp[0] = big.NewInt(1)
	for s := 1; s < size; s++ {
		if err := bud.Charge(1); err != nil {
			return nil, fmt.Errorf("bipartite: counting fixed-edge matchings: %w", err)
		}
		c := bits.OnesCount(uint(s))
		if c > len(rows) {
			continue
		}
		row := rows[c-1]
		acc := new(big.Int)
		for _, x := range e.Adj[row] {
			bit := 1 << uint(x)
			if s&bit != 0 && dp[s^bit] != nil && dp[s^bit].Sign() > 0 {
				acc.Add(acc, dp[s^bit])
			}
		}
		dp[s] = acc
	}
	full := size - 1
	out := make([]*big.Int, n)
	for x := range out {
		out[x] = new(big.Int)
	}
	for _, x := range e.Adj[w] {
		// Matchings containing (w′, x): the other n-1 left vertices cover
		// exactly the right vertices except x.
		s := full ^ (1 << uint(x))
		if dp[s] != nil {
			out[x].Set(dp[s])
		}
	}
	return out, nil
}

// EnumeratePerfectMatchings calls visit for every perfect matching, passing
// the matching as match[w] = x. The slice is reused; visit must copy it to
// retain it. Enumeration explodes combinatorially; an error is returned when
// the matching count exceeds maxCount (pass 0 for a default of 10_000_000).
func (e *Explicit) EnumeratePerfectMatchings(maxCount int, visit func(match []int)) error {
	return e.EnumeratePerfectMatchingsCtx(context.Background(), maxCount, visit)
}

// EnumeratePerfectMatchingsCtx is EnumeratePerfectMatchings under a work
// budget: one operation is charged per branch of the backtracking search, so
// cancellation aborts within one budget window even when the graph admits no
// early matchings at all.
func (e *Explicit) EnumeratePerfectMatchingsCtx(ctx context.Context, maxCount int, visit func(match []int)) error {
	if maxCount <= 0 {
		maxCount = 10_000_000
	}
	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return err
	}
	match := make([]int, e.N)
	used := make([]bool, e.N)
	count := 0
	var rec func(w int) error
	rec = func(w int) error {
		if w == e.N {
			count++
			if count > maxCount {
				return fmt.Errorf("bipartite: more than %d perfect matchings", maxCount)
			}
			visit(match)
			return nil
		}
		for _, x := range e.Adj[w] {
			if err := bud.Charge(1); err != nil {
				return fmt.Errorf("bipartite: enumerating perfect matchings: %w", err)
			}
			if !used[x] {
				used[x] = true
				match[w] = x
				if err := rec(w + 1); err != nil {
					return err
				}
				used[x] = false
			}
		}
		return nil
	}
	return rec(0)
}
