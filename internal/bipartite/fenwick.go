// Package bipartite implements the consistent-crack-mapping graph of the
// SIGMOD 2005 paper "To Do or Not To Do: The Dilemma of Disclosing Anonymized
// Data", together with the graph algorithms the paper's analyses need:
// outdegree computation for the O-estimate (Figure 5), degree-1 propagation
// (Figure 7), perfect-matching feasibility, exact permanents for the direct
// method (Section 4.1), and Rasmussen's randomized permanent estimator [21].
//
// Because belief intervals select contiguous runs of sorted frequency groups,
// the graph admits a compact representation — one group range per item plus
// group sizes — that stays O(n + g) even when the explicit edge set would be
// quadratic (e.g. RETAIL-scale domains with wide intervals).
package bipartite

// fenwick is a Fenwick (binary indexed) tree over n slots supporting point
// updates and prefix sums in O(log n).
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick {
	return &fenwick{tree: make([]int, n+1)}
}

// Add adds delta to slot i (0-based).
func (f *fenwick) Add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// PrefixSum returns the sum of slots [0, i] (0-based, inclusive).
// PrefixSum(-1) is 0.
func (f *fenwick) PrefixSum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// RangeSum returns the sum of slots [lo, hi] inclusive; 0 if lo > hi.
func (f *fenwick) RangeSum(lo, hi int) int {
	if lo > hi {
		return 0
	}
	return f.PrefixSum(hi) - f.PrefixSum(lo-1)
}

// FindKth returns the smallest index i such that PrefixSum(i) >= k, assuming
// all slot values are non-negative and the total is at least k (k >= 1).
// It runs in O(log n) by descending the implicit tree.
func (f *fenwick) FindKth(k int) int {
	pos := 0
	// Largest power of two <= len(tree)-1.
	bit := 1
	for bit<<1 <= len(f.tree)-1 {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := pos + bit
		if next <= len(f.tree)-1 && f.tree[next] < k {
			pos = next
			k -= f.tree[next]
		}
	}
	return pos // 0-based slot index
}

// rangeFenwick supports range updates and point queries via a difference
// Fenwick tree: Add(lo, hi, delta) adds delta to every slot in [lo, hi];
// Get(i) returns slot i's value.
type rangeFenwick struct {
	diff *fenwick
}

func newRangeFenwick(n int) *rangeFenwick {
	return &rangeFenwick{diff: newFenwick(n + 1)}
}

// Add adds delta to every slot in [lo, hi] inclusive.
func (f *rangeFenwick) Add(lo, hi, delta int) {
	if lo > hi {
		return
	}
	f.diff.Add(lo, delta)
	f.diff.Add(hi+1, -delta)
}

// Get returns the current value of slot i.
func (f *rangeFenwick) Get(i int) int {
	return f.diff.PrefixSum(i)
}
