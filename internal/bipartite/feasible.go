package bipartite

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"repro/internal/budget"
)

// itemHeap is a min-heap of items keyed by the upper end of their group
// range; used by the greedy interval matcher.
type itemHeap struct {
	ids []int
	hi  []int // indexed by item id
}

func (h *itemHeap) Len() int           { return len(h.ids) }
func (h *itemHeap) Less(i, j int) bool { return h.hi[h.ids[i]] < h.hi[h.ids[j]] }
func (h *itemHeap) Swap(i, j int)      { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *itemHeap) Push(x interface{}) { h.ids = append(h.ids, x.(int)) }
func (h *itemHeap) Pop() interface{} {
	v := h.ids[len(h.ids)-1]
	h.ids = h.ids[:len(h.ids)-1]
	return v
}

// PerfectMatching returns a consistent perfect matching as a slice mapping
// each item x to the anonymized item assigned to it, or ErrInfeasible when
// none exists. Because every item's candidates form a contiguous range of
// frequency groups, the classic earliest-deadline greedy is exact here:
// process groups in ascending order and serve each with the available items
// whose ranges end soonest.
//
// The matching produced is deterministic; use it as a seed for the MCMC
// sampler when the identity matching is inconsistent (α < 1 belief
// functions).
func (g *Graph) PerfectMatching() ([]int, error) {
	return g.PerfectMatchingCtx(context.Background())
}

// PerfectMatchingCtx is PerfectMatching under a work budget: one operation
// per heap push/pop, so the O(n log n) greedy respects deadlines when n is
// web-scale even though it never does superlinear work.
func (g *Graph) PerfectMatchingCtx(ctx context.Context) ([]int, error) {
	n := g.Items()
	k := g.NumGroups()
	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return nil, err
	}
	order := make([]int, n)
	for x := range order {
		order[x] = x
	}
	sort.Slice(order, func(a, b int) bool { return g.ItemLo[order[a]] < g.ItemLo[order[b]] })

	h := &itemHeap{hi: g.ItemHi}
	heap.Init(h)
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	next := 0
	for gi := 0; gi < k; gi++ {
		for next < n && g.ItemLo[order[next]] <= gi {
			x := order[next]
			if g.ItemLo[x] > g.ItemHi[x] {
				return nil, ErrInfeasible // item with no candidates
			}
			heap.Push(h, x)
			next++
		}
		for _, w := range g.GroupItems[gi] {
			if err := bud.Charge(1); err != nil {
				return nil, fmt.Errorf("bipartite: perfect matching: %w", err)
			}
			if h.Len() == 0 {
				return nil, ErrInfeasible
			}
			x := heap.Pop(h).(int)
			if g.ItemHi[x] < gi {
				return nil, ErrInfeasible // its whole range has passed
			}
			match[x] = w
		}
	}
	// All items must have been consumed: any item with ItemLo beyond the last
	// group or still in the heap cannot be matched.
	if next < n || h.Len() > 0 {
		return nil, ErrInfeasible
	}
	return match, nil
}

// Feasible reports whether a consistent perfect matching exists.
func (g *Graph) Feasible() bool {
	_, err := g.PerfectMatching()
	return err == nil
}

// IdentityMatching returns the matching that maps every anonymized item to
// its own original (every item cracked), which is consistent exactly when the
// belief function is fully compliant. It returns ErrInfeasible otherwise.
// The paper's simulation procedure (Section 7.1) uses it as the seed state.
func (g *Graph) IdentityMatching() ([]int, error) {
	n := g.Items()
	match := make([]int, n)
	for x := 0; x < n; x++ {
		if !g.Compliant(x) {
			return nil, ErrInfeasible
		}
		match[x] = x
	}
	return match, nil
}
