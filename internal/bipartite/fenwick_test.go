package bipartite

import (
	"math/rand"
	"testing"
)

func TestFenwickBasic(t *testing.T) {
	f := newFenwick(10)
	vals := []int{3, 0, 5, 1, 0, 2, 0, 0, 7, 4}
	for i, v := range vals {
		f.Add(i, v)
	}
	sum := 0
	for i, v := range vals {
		sum += v
		if got := f.PrefixSum(i); got != sum {
			t.Errorf("PrefixSum(%d) = %d, want %d", i, got, sum)
		}
	}
	if got := f.PrefixSum(-1); got != 0 {
		t.Errorf("PrefixSum(-1) = %d, want 0", got)
	}
	if got := f.RangeSum(2, 5); got != 8 {
		t.Errorf("RangeSum(2,5) = %d, want 8", got)
	}
	if got := f.RangeSum(5, 2); got != 0 {
		t.Errorf("RangeSum(5,2) = %d, want 0", got)
	}
	f.Add(2, -5)
	if got := f.RangeSum(2, 5); got != 3 {
		t.Errorf("after update RangeSum(2,5) = %d, want 3", got)
	}
}

func TestFenwickFindKth(t *testing.T) {
	f := newFenwick(6)
	vals := []int{0, 2, 0, 3, 1, 0}
	for i, v := range vals {
		f.Add(i, v)
	}
	// Cumulative: 0,2,2,5,6,6. FindKth(k) = first index with prefix >= k.
	cases := map[int]int{1: 1, 2: 1, 3: 3, 5: 3, 6: 4}
	for k, want := range cases {
		if got := f.FindKth(k); got != want {
			t.Errorf("FindKth(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestFenwickFindKthRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		f := newFenwick(n)
		vals := make([]int, n)
		total := 0
		for i := range vals {
			vals[i] = rng.Intn(4)
			total += vals[i]
			f.Add(i, vals[i])
		}
		if total == 0 {
			continue
		}
		k := 1 + rng.Intn(total)
		got := f.FindKth(k)
		// Brute force.
		want, cum := -1, 0
		for i, v := range vals {
			cum += v
			if cum >= k {
				want = i
				break
			}
		}
		if got != want {
			t.Fatalf("trial %d: FindKth(%d) = %d, want %d (vals %v)", trial, k, got, want, vals)
		}
	}
}

func TestRangeFenwick(t *testing.T) {
	f := newRangeFenwick(8)
	f.Add(1, 4, 2)
	f.Add(3, 6, 5)
	f.Add(5, 2, 9) // inverted range: no-op
	want := []int{0, 2, 2, 7, 7, 5, 5, 0}
	for i, w := range want {
		if got := f.Get(i); got != w {
			t.Errorf("Get(%d) = %d, want %d", i, got, w)
		}
	}
	f.Add(1, 4, -2)
	if got := f.Get(2); got != 0 {
		t.Errorf("after removal Get(2) = %d, want 0", got)
	}
}
