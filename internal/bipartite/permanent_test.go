package bipartite

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

func factorial(n int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

func TestCountPerfectMatchingsComplete(t *testing.T) {
	for n := 1; n <= 8; n++ {
		got, err := Complete(n).CountPerfectMatchings()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if want := factorial(n); got.Cmp(want) != 0 {
			t.Errorf("perm(K_%d) = %v, want %v", n, got, want)
		}
	}
}

func TestCountPerfectMatchingsIdentityAndEmpty(t *testing.T) {
	id := MustExplicit(4, [][]int{{0}, {1}, {2}, {3}})
	got, err := id.CountPerfectMatchings()
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 1 {
		t.Errorf("perm(identity) = %v, want 1", got)
	}
	empty := MustExplicit(3, [][]int{{}, {}, {}})
	got, err = empty.CountPerfectMatchings()
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Errorf("perm(empty) = %v, want 0", got)
	}
}

func TestCountPerfectMatchingsTooLarge(t *testing.T) {
	if _, err := Complete(MaxExactN + 1).CountPerfectMatchings(); err == nil {
		t.Error("want error for n > MaxExactN")
	}
}

func TestCountMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(6)
		e := RandomExplicit(n, rng.Float64(), rng)
		count := 0
		if err := e.EnumeratePerfectMatchings(0, func([]int) { count++ }); err != nil {
			t.Fatal(err)
		}
		got, err := e.CountPerfectMatchings()
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != int64(count) {
			t.Fatalf("trial %d: DP count %v, enumeration %d", trial, got, count)
		}
	}
}

func TestEnumerationRespectsMaxCount(t *testing.T) {
	if err := Complete(6).EnumeratePerfectMatchings(10, func([]int) {}); err == nil {
		t.Error("want error when matchings exceed maxCount")
	}
}

func TestEdgeInclusionComplete(t *testing.T) {
	// On K_n every edge is in a fraction 1/n of matchings.
	n := 5
	probs, err := Complete(n).EdgeInclusionProbability()
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < n; w++ {
		for x := 0; x < n; x++ {
			if math.Abs(probs[w][x]-1.0/float64(n)) > 1e-12 {
				t.Errorf("P(%d,%d) = %v, want %v", w, x, probs[w][x], 1.0/float64(n))
			}
		}
	}
}

func TestEdgeInclusionFigure6b(t *testing.T) {
	// Figure 6(b): {1',2'}x{1,2}, {3',4'}x{3,4}, plus the irrelevant edge
	// (2',3). There are 4 matchings; (2',3) is in none; diagonal edges are in
	// half each, so the exact expected number of cracks is 2.
	e := MustExplicit(4, [][]int{{0, 1}, {0, 1, 2}, {2, 3}, {2, 3}})
	total, err := e.CountPerfectMatchings()
	if err != nil {
		t.Fatal(err)
	}
	if total.Int64() != 4 {
		t.Fatalf("matchings = %v, want 4", total)
	}
	probs, err := e.EdgeInclusionProbability()
	if err != nil {
		t.Fatal(err)
	}
	if probs[1][2] != 0 {
		t.Errorf("P(2',3) = %v, want 0 (irrelevant edge)", probs[1][2])
	}
	exp := 0.0
	for x := 0; x < 4; x++ {
		exp += probs[x][x]
	}
	if math.Abs(exp-2.0) > 1e-12 {
		t.Errorf("exact E(X) = %v, want 2", exp)
	}
}

func TestEdgeInclusionMatchesMinors(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		e := RandomExplicit(n, 0.5, rng)
		total, err := e.CountPerfectMatchings()
		if err != nil {
			t.Fatal(err)
		}
		if total.Sign() == 0 {
			continue
		}
		probs, err := e.EdgeInclusionProbability()
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < n; w++ {
			for x := 0; x < n; x++ {
				var want float64
				if e.HasEdge(w, x) {
					mc, err := e.Minor(w, x).CountPerfectMatchings()
					if err != nil {
						t.Fatal(err)
					}
					f, _ := new(big.Float).Quo(new(big.Float).SetInt(mc), new(big.Float).SetInt(total)).Float64()
					want = f
				}
				if math.Abs(probs[w][x]-want) > 1e-9 {
					t.Fatalf("trial %d: P(%d,%d) = %v, minors give %v", trial, w, x, probs[w][x], want)
				}
			}
		}
	}
}

func TestEdgeInclusionInfeasible(t *testing.T) {
	e := MustExplicit(2, [][]int{{1}, {1}})
	if _, err := e.EdgeInclusionProbability(); err != ErrInfeasible {
		t.Errorf("EdgeInclusionProbability = %v, want ErrInfeasible", err)
	}
}

func TestMinorAndDeleteEdge(t *testing.T) {
	e := MustExplicit(3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	m := e.Minor(1, 1)
	// Remaining left {0,2} relabeled {0,1}; right {0,2} relabeled {0,1}.
	if m.N != 2 {
		t.Fatalf("minor size = %d, want 2", m.N)
	}
	if !m.HasEdge(0, 0) || m.HasEdge(0, 1) {
		t.Errorf("minor row 0 = %v, want [0]", m.Adj[0])
	}
	if !m.HasEdge(1, 0) || !m.HasEdge(1, 1) {
		t.Errorf("minor row 1 = %v, want [0 1]", m.Adj[1])
	}
	d := e.DeleteEdge(1, 2)
	if d.HasEdge(1, 2) || !d.HasEdge(1, 1) || d.NumEdges() != e.NumEdges()-1 {
		t.Errorf("DeleteEdge failed: %v", d.Adj)
	}
}

func TestHopcroftKarpAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		e := RandomExplicit(n, rng.Float64()*0.7, rng)
		// RandomExplicit includes the diagonal, so always feasible; remove
		// random edges to create infeasible cases.
		for w := 0; w < n; w++ {
			if rng.Intn(3) == 0 && len(e.Adj[w]) > 0 {
				e.Adj[w] = e.Adj[w][:len(e.Adj[w])-1]
			}
		}
		count, err := e.CountPerfectMatchings()
		if err != nil {
			t.Fatal(err)
		}
		if got := e.HasPerfectMatching(); got != (count.Sign() > 0) {
			t.Fatalf("trial %d: HasPerfectMatching = %v, permanent = %v", trial, got, count)
		}
		size, mL, mR := e.MaximumMatching()
		// Validate matching consistency.
		seen := 0
		for w := 0; w < n; w++ {
			if mL[w] >= 0 {
				seen++
				if mR[mL[w]] != w || !e.HasEdge(w, mL[w]) {
					t.Fatalf("trial %d: inconsistent matching", trial)
				}
			}
		}
		if seen != size {
			t.Fatalf("trial %d: size %d but %d matched", trial, size, seen)
		}
	}
}

func TestRasmussenUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 5; trial++ {
		n := 3 + rng.Intn(4)
		e := RandomExplicit(n, 0.6, rng)
		exact, err := e.CountPerfectMatchings()
		if err != nil {
			t.Fatal(err)
		}
		want, _ := new(big.Float).SetInt(exact).Float64()
		got := RasmussenEstimate(e, 60000, rng)
		tol := 0.15*want + 0.5
		if math.Abs(got-want) > tol {
			t.Errorf("trial %d (n=%d): Rasmussen = %v, exact = %v", trial, n, got, want)
		}
	}
}

func TestExplicitValidation(t *testing.T) {
	if _, err := NewExplicit(0, nil); err == nil {
		t.Error("NewExplicit(0): want error")
	}
	if _, err := NewExplicit(2, [][]int{{0}}); err == nil {
		t.Error("NewExplicit(wrong rows): want error")
	}
	if _, err := NewExplicit(2, [][]int{{0}, {2}}); err == nil {
		t.Error("NewExplicit(out of range): want error")
	}
}

func TestExplicitRejectsDuplicateEdges(t *testing.T) {
	if _, err := NewExplicit(2, [][]int{{0, 0}, {1}}); err == nil {
		t.Error("duplicate edge: want error")
	}
	// The same target in different rows is fine.
	if _, err := NewExplicit(2, [][]int{{0, 1}, {0, 1}}); err != nil {
		t.Errorf("cross-row repeats are legal: %v", err)
	}
}
