package bipartite

import (
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/dataset"
)

func TestExplicitPropagateStaircase(t *testing.T) {
	// Figure 6(a) as an explicit graph: full cascade.
	e := MustExplicit(4, [][]int{{0, 1, 2, 3}, {1, 2, 3}, {2, 3}, {3}})
	p, err := e.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Forced) != 4 || p.ForcedCracks() != 4 {
		t.Fatalf("forced %d (cracks %d), want full cascade of 4", len(p.Forced), p.ForcedCracks())
	}
}

func TestExplicitPropagateNoOp(t *testing.T) {
	p, err := Complete(4).Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Forced) != 0 {
		t.Errorf("complete graph forced %d edges", len(p.Forced))
	}
	for x, d := range p.Outdeg {
		if d != 4 {
			t.Errorf("Outdeg[%d] = %d, want 4", x, d)
		}
	}
}

func TestExplicitPropagateInfeasible(t *testing.T) {
	// Two left vertices share a single right vertex.
	e := MustExplicit(2, [][]int{{1}, {1}})
	if _, err := e.Propagate(); err != ErrInfeasible {
		t.Errorf("Propagate = %v, want ErrInfeasible", err)
	}
	// A left vertex with no edges at all.
	e2 := MustExplicit(2, [][]int{{}, {0, 1}})
	if _, err := e2.Propagate(); err != ErrInfeasible {
		t.Errorf("empty row: Propagate = %v, want ErrInfeasible", err)
	}
}

func TestExplicitPropagateForcedEdgesInEveryMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tested := 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(6)
		e := RandomExplicit(n, rng.Float64()*0.6, rng)
		// Remove some edges to create sparse/infeasible cases.
		for w := 0; w < n; w++ {
			if rng.Intn(3) == 0 && len(e.Adj[w]) > 1 {
				e.Adj[w] = e.Adj[w][:len(e.Adj[w])-1]
			}
		}
		var matchings [][]int
		if err := e.EnumeratePerfectMatchings(100000, func(m []int) {
			matchings = append(matchings, append([]int(nil), m...))
		}); err != nil {
			t.Fatal(err)
		}
		p, err := e.Propagate()
		if len(matchings) == 0 {
			// Infeasible graph: propagation may or may not detect it, but a
			// successful run must not force non-edges.
			if err == nil {
				for _, fp := range p.Forced {
					if !e.HasEdge(fp.Anon, fp.Item) {
						t.Fatalf("trial %d: forced non-edge %+v", trial, fp)
					}
				}
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: Propagate failed on feasible graph: %v", trial, err)
		}
		tested++
		for _, fp := range p.Forced {
			for _, m := range matchings {
				if m[fp.Anon] != fp.Item {
					t.Fatalf("trial %d: forced %+v absent from matching %v", trial, fp, m)
				}
			}
		}
		// Outdeg must never undercount observed partners.
		partners := make([]map[int]bool, n)
		for x := range partners {
			partners[x] = map[int]bool{}
		}
		for _, m := range matchings {
			for w, x := range m {
				partners[x][w] = true
			}
		}
		for x := 0; x < n; x++ {
			if p.Outdeg[x] < len(partners[x]) {
				t.Fatalf("trial %d: Outdeg[%d]=%d < %d partners", trial, x, p.Outdeg[x], len(partners[x]))
			}
		}
	}
	if tested < 80 {
		t.Errorf("only %d feasible graphs exercised", tested)
	}
}

func TestExplicitPropagateMatchesCompact(t *testing.T) {
	// On interval-structured graphs both propagation implementations must
	// force the same pairs and report the same residual degrees.
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 100; trial++ {
		g := randomCompactGraph(t, rng, 2+rng.Intn(8))
		pc, errC := g.Propagate()
		pe, errE := g.ToExplicit().Propagate()
		if (errC == nil) != (errE == nil) {
			// The two detectors differ in completeness; both are sound, so
			// only flag the case where one *succeeds* and forces a non-edge.
			continue
		}
		if errC != nil {
			continue
		}
		if len(pc.Forced) != len(pe.Forced) {
			t.Fatalf("trial %d: compact forced %d, explicit %d", trial, len(pc.Forced), len(pe.Forced))
		}
		for x := range pc.Outdeg {
			if pc.Outdeg[x] != pe.Outdeg[x] {
				t.Fatalf("trial %d: Outdeg[%d] compact %d vs explicit %d", trial, x, pc.Outdeg[x], pe.Outdeg[x])
			}
		}
	}
}

// randomCompactGraph builds a compact graph from random counts and random
// compliant intervals.
func randomCompactGraph(t testing.TB, rng *rand.Rand, n int) *Graph {
	t.Helper()
	m := 10 + rng.Intn(30)
	counts := make([]int, n)
	for i := range counts {
		counts[i] = rng.Intn(m + 1)
	}
	ft, err := dataset.NewTable(m, counts)
	if err != nil {
		t.Fatal(err)
	}
	bf := belief.RandomCompliant(ft.Frequencies(), rng.Float64()*0.3, rng)
	g, err := Build(bf, dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	return g
}
