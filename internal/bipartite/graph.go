package bipartite

import (
	"fmt"
	"sort"

	"repro/internal/belief"
	"repro/internal/bitset"
	"repro/internal/dataset"
)

// Graph is the compact representation of the bipartite graph
// G = (J ∪ I, E) of Section 2.3: anonymized items J on one side, original
// items I on the other, with an edge (w′, x) whenever the observed frequency
// of w′ lies in x's belief interval.
//
// Because the anonymization is a bijection and observed frequencies are
// permutation-invariant, anonymized items are identified here by the original
// item they hide: "anonymized item x′" is represented by the id x. The graph
// never depends on the concrete anonymization mapping.
//
// Anonymized items are grouped by observed frequency (ascending); an item's
// belief interval covers a contiguous range of groups, stored as
// [ItemLo[x], ItemHi[x]] (inclusive; ItemLo[x] > ItemHi[x] means the item has
// no consistent counterpart, which can only happen for non-compliant items).
type Graph struct {
	Freqs      []float64 // distinct observed frequencies, ascending (len g)
	GroupSize  []int     // number of anonymized items per group
	GroupItems [][]int   // anonymized-item ids per group (ids in original space)
	ItemGroup  []int     // true group of each item (= group of its anonymized twin)
	ItemLo     []int     // first group index covered by the item's belief interval
	ItemHi     []int     // last group index covered (inclusive)

	prefix []int // prefix[i] = total anonymized items in groups [0, i)

	// Flat candidate layout (DESIGN.md §11): flat is the concatenation of
	// GroupItems in group order, so the anonymized items consistent with
	// item x occupy the contiguous window
	// flat[candBase[x] : candBase[x]+candSpan[x]] — samplers draw a uniform
	// candidate with one bounded-rand draw and one array index instead of
	// two prefix lookups and a binary search.
	flat     []int
	candBase []int
	candSpan []int

	// Word-packed kernels (DESIGN.md §16): compliant has bit x set when
	// Compliant(x), so the O-estimate scans 64 items per load; invSpan[x] is
	// the reciprocal 1/candSpan[x] (0 for empty ranges), precomputed so the
	// scan's float adds skip the per-item division. Both are derived state:
	// Build fills them and Rebin keeps them consistent, exactly like the flat
	// candidate layout.
	compliant bitset.Set
	invSpan   []float64
}

// Build constructs the graph from a belief function and the grouping of the
// (anonymized) database. The belief function and grouping must share the same
// domain size.
//
//lint:allow ctxbudget O(n log n) construction that even the cascade's floor tier cannot skip
func Build(bf *belief.Function, gr *dataset.Grouping) (*Graph, error) {
	n := gr.NumItems()
	if bf.Items() != n {
		return nil, fmt.Errorf("bipartite: belief domain %d != dataset domain %d", bf.Items(), n)
	}
	k := gr.NumGroups()
	g := &Graph{
		Freqs:      gr.Freqs(),
		GroupSize:  make([]int, k),
		GroupItems: make([][]int, k),
		ItemGroup:  make([]int, n),
		ItemLo:     make([]int, n),
		ItemHi:     make([]int, n),
		prefix:     make([]int, k+1),
	}
	//lint:allow loopbudget partition sweep over disjoint groups is O(n) total, per the ctxbudget allow above
	for gi, grp := range gr.Groups {
		g.GroupSize[gi] = len(grp.Items)
		g.GroupItems[gi] = append([]int(nil), grp.Items...)
		for _, x := range grp.Items {
			g.ItemGroup[x] = gi
		}
	}
	for gi := 0; gi < k; gi++ {
		g.prefix[gi+1] = g.prefix[gi] + g.GroupSize[gi]
	}
	for x := 0; x < n; x++ {
		iv := bf.Interval(x)
		g.ItemLo[x], g.ItemHi[x] = groupRange(g.Freqs, iv)
	}
	g.flat = make([]int, 0, n)
	for _, items := range g.GroupItems {
		g.flat = append(g.flat, items...)
	}
	g.candBase = make([]int, n)
	g.candSpan = make([]int, n)
	for x := 0; x < n; x++ {
		lo, hi := g.ItemLo[x], g.ItemHi[x]
		if lo > hi {
			continue // no consistent counterpart: zero span, base irrelevant
		}
		g.candBase[x] = g.prefix[lo]
		g.candSpan[x] = g.prefix[hi+1] - g.prefix[lo]
	}
	g.compliant = bitset.New(n)
	g.invSpan = make([]float64, n)
	for x := 0; x < n; x++ {
		if g.Compliant(x) {
			g.compliant.Add(x)
		}
		if g.candSpan[x] > 0 {
			g.invSpan[x] = 1 / float64(g.candSpan[x])
		}
	}
	return g, nil
}

// groupRange returns the inclusive range of indices of freqs (sorted
// ascending) falling inside the closed interval iv, with belief.Epsilon
// slack. An empty range is returned as (1, 0)-style lo > hi.
//
// The bounds must agree with belief.Interval.Contains on every frequency —
// edges of the graph are defined as "observed frequency lies in the belief
// interval", and Compliant/CompliantCount must match belief.CompliantMask.
// Contains admits f ∈ [Lo−ε, Hi+ε] with both endpoints included, so the
// upper search uses > (first index strictly beyond Hi+ε) rather than
// SearchFloat64s' ≥, which would drop a frequency lying exactly at Hi+ε.
//
// The lower bound needs no such correction: SearchFloat64s returns the first
// index with freqs[i] ≥ Lo−ε, which is exactly Contains' admission test
// f ≥ Lo−ε — a frequency lying precisely at Lo−ε is the first covered index.
// TestGroupRangeExactEpsilonBoundary and TestHasEdgeMatchesContainsExactLoEps
// pin this with Nextafter-solved exact-boundary frequencies on both sides.
func groupRange(freqs []float64, iv belief.Interval) (lo, hi int) {
	lo = sort.SearchFloat64s(freqs, iv.Lo-belief.Epsilon)
	hi = sort.Search(len(freqs), func(i int) bool { return freqs[i] > iv.Hi+belief.Epsilon }) - 1
	return lo, hi
}

// Items returns the domain size n.
func (g *Graph) Items() int { return len(g.ItemGroup) }

// NumGroups returns the number of distinct observed frequencies.
func (g *Graph) NumGroups() int { return len(g.Freqs) }

// Outdegree returns O_x: the number of anonymized items whose observed
// frequency lies in item x's belief interval, i.e. the number of anonymized
// items that a consistent mapping may send to x.
func (g *Graph) Outdegree(x int) int {
	lo, hi := g.ItemLo[x], g.ItemHi[x]
	if lo > hi {
		return 0
	}
	return g.prefix[hi+1] - g.prefix[lo]
}

// Outdegrees returns O_x for every item, without propagation. This is the
// quantity Step 4 of the O-estimate procedure (Figure 5) computes via
// frequency groups and prefix sums in O(n log n).
func (g *Graph) Outdegrees() []int {
	out := make([]int, g.Items())
	for x := range out {
		out[x] = g.Outdegree(x)
	}
	return out
}

// NumEdges returns |E| = Σ_x O_x.
func (g *Graph) NumEdges() int {
	total := 0
	for x := 0; x < g.Items(); x++ {
		total += g.Outdegree(x)
	}
	return total
}

// HasEdge reports whether anonymized item w′ may map to item x, i.e. whether
// w's observed frequency group lies in x's belief range.
func (g *Graph) HasEdge(w, x int) bool {
	gw := g.ItemGroup[w]
	return g.ItemLo[x] <= gw && gw <= g.ItemHi[x]
}

// Compliant reports whether item x's own anonymized twin is a consistent
// image, i.e. the edge (x′, x) exists. This matches belief-function
// compliancy on x (Section 2.3).
func (g *Graph) Compliant(x int) bool { return g.HasEdge(x, x) }

// CompliantCount returns the number of items on which the underlying belief
// function is compliant.
func (g *Graph) CompliantCount() int {
	c := 0
	for x := 0; x < g.Items(); x++ {
		if g.Compliant(x) {
			c++
		}
	}
	return c
}

// OutdegreePrefix returns the total number of anonymized items in the first
// gi frequency groups (groups [0, gi)). Kept for propagation and tests; the
// sampler hot path reads the flat candidate layout instead.
func (g *Graph) OutdegreePrefix(gi int) int { return g.prefix[gi] }

// Candidates returns the anonymized items consistent with item x as a
// subslice of the graph's flat group-ordered candidate array — zero-copy,
// zero-alloc, and in ascending group order. The k-th consistent candidate
// of x is Candidates(x)[k]; the slice must not be mutated.
func (g *Graph) Candidates(x int) []int {
	return g.flat[g.candBase[x] : g.candBase[x]+g.candSpan[x]]
}

// ComplianceSet returns the word-packed set {x : Compliant(x)}, shared with
// the graph and read-only for callers. The O-estimate kernels AND its words
// against their masks and walk set bits with math/bits.TrailingZeros64
// instead of testing items one branch at a time.
func (g *Graph) ComplianceSet() bitset.Set { return g.compliant }

// OutdegreeReciprocals returns the precomputed per-item 1/O_x vector
// (0 where O_x = 0), shared with the graph and read-only for callers.
// 1/float64(O_x) is computed once here with the very operation the scans
// historically performed per visit, so sums over it are bit-for-bit equal to
// the division-per-item loops it replaces.
func (g *Graph) OutdegreeReciprocals() []float64 { return g.invSpan }

// CandidateLayout exposes the flat candidate arrays to the sampler kernel:
// flat is the group-ordered concatenation of GroupItems, and item x's
// consistent candidates are flat[base[x] : base[x]+span[x]]. Callers
// capture the three slice headers once and index them directly in the
// per-proposal loop — one bounded-rand draw plus one load replaces the two
// prefix lookups and the binary search of the pre-flat kernel. The slices
// are shared with the graph and must be treated as read-only.
func (g *Graph) CandidateLayout() (flat, base, span []int) {
	return g.flat, g.candBase, g.candSpan
}
