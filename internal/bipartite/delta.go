package bipartite

import (
	"fmt"

	"repro/internal/belief"
	"repro/internal/dataset"
)

// RebinUpdate carries everything Rebin needs to patch a graph after a counts
// diff: the post-diff grouping (from dataset.ApplyDiffGrouping), the
// RebinDelta describing which groups moved, and which items' belief intervals
// changed (the recipe rebuilds the belief function around the new frequencies
// and median gap, so intervals can move even when the grouping barely does).
type RebinUpdate struct {
	// Grouping is the grouping of the table AFTER the diff was applied.
	Grouping *dataset.Grouping
	// Delta is the change report produced alongside Grouping.
	Delta *dataset.RebinDelta
	// ChangedIntervals lists the items whose belief intervals differ from the
	// ones the graph was built with, ascending. Ignored when AllIntervals is
	// set or Delta.FreqsChanged forces a full interval pass anyway.
	ChangedIntervals []int
	// AllIntervals forces recomputation of every item's group range — set it
	// when the belief function changed globally (e.g. a new δ_med width).
	AllIntervals bool
}

// Rebin patches the graph in place to match Build(bf, up.Grouping), touching
// only the frequency groups at or beyond Delta.FirstGroup and only the belief
// ranges that could have moved. It returns the ascending list of items whose
// O-estimate contribution may have changed — outdegree or compliancy moved —
// which is exactly the work order for core.OEDelta.Refresh. The list is a
// superset-safe signal: recomputing an unchanged item is bit-identical, so
// callers never need to second-guess it.
//
// The equivalence invariant (pinned by TestRebinMatchesBuild): after Rebin,
// every exported field and the flat candidate layout are deep-equal to a
// fresh Build against the same belief function and grouping. Everything
// downstream — propagation, sampling, O-estimates, verdicts — therefore
// computes bit-for-bit the same values on the patched graph as on a rebuilt
// one.
//
//lint:allow ctxbudget patch cost is O(changed + n) index work, below any budget floor
func (g *Graph) Rebin(bf *belief.Function, up RebinUpdate) (changed []int, err error) {
	gr, rd := up.Grouping, up.Delta
	if gr == nil || rd == nil {
		return nil, fmt.Errorf("bipartite: Rebin needs both Grouping and Delta")
	}
	n := g.Items()
	if gr.NumItems() != n {
		return nil, fmt.Errorf("bipartite: rebin grouping domain %d != graph domain %d", gr.NumItems(), n)
	}
	if bf.Items() != n {
		return nil, fmt.Errorf("bipartite: belief domain %d != graph domain %d", bf.Items(), n)
	}
	k := gr.NumGroups()
	fg := rd.FirstGroup
	if fg < 0 || fg > k {
		return nil, fmt.Errorf("bipartite: FirstGroup %d outside [0,%d]", fg, k)
	}

	// Snapshot the two quantities that decide an item's O-estimate
	// contribution: outdegree (= candidate span) and compliancy.
	oldSpan := append([]int(nil), g.candSpan...)
	oldCompliant := make([]bool, n)
	for x := 0; x < n; x++ {
		oldCompliant[x] = g.Compliant(x)
	}

	// Patch the group structures from the first changed group on. Groups
	// below fg are identical in count, membership, and index, so their
	// GroupSize/GroupItems/ItemGroup/prefix entries are already correct.
	g.GroupSize = resizeInts(g.GroupSize, k)
	if cap(g.GroupItems) < k {
		gi2 := make([][]int, k)
		copy(gi2, g.GroupItems)
		g.GroupItems = gi2
	} else {
		g.GroupItems = g.GroupItems[:k]
	}
	g.prefix = resizeInts(g.prefix, k+1)
	//lint:allow loopbudget partition sweep over disjoint groups is O(n) total; Rebin has no ctx and callers budget the enclosing recompute
	for gi := fg; gi < k; gi++ {
		grp := gr.Groups[gi]
		g.GroupSize[gi] = len(grp.Items)
		g.GroupItems[gi] = append([]int(nil), grp.Items...)
		for _, x := range grp.Items {
			g.ItemGroup[x] = gi
		}
		g.prefix[gi+1] = g.prefix[gi] + len(grp.Items)
	}

	// Refresh the frequency vector and the belief ranges. When the
	// frequency vector is unchanged, a group index means the same frequency
	// it did before, so only items whose belief interval moved need a new
	// range; otherwise every range is recomputed against the new vector.
	g.Freqs = gr.Freqs()
	if rd.FreqsChanged || up.AllIntervals {
		for x := 0; x < n; x++ {
			g.ItemLo[x], g.ItemHi[x] = groupRange(g.Freqs, bf.Interval(x))
		}
	} else {
		for _, x := range up.ChangedIntervals {
			if x < 0 || x >= n {
				return nil, fmt.Errorf("bipartite: changed-interval item %d outside [0,%d)", x, n)
			}
			g.ItemLo[x], g.ItemHi[x] = groupRange(g.Freqs, bf.Interval(x))
		}
	}

	// Rebuild the flat candidate array from the first changed group's offset;
	// the prefix below it is the unchanged concatenation of unchanged groups.
	g.flat = g.flat[:g.prefix[fg]]
	for gi := fg; gi < k; gi++ {
		g.flat = append(g.flat, g.GroupItems[gi]...)
	}

	// Re-derive every [base, span) window from the patched prefix sums,
	// zeroing both for items with no consistent counterpart exactly as Build
	// leaves them, then report the items whose contribution inputs moved.
	for x := 0; x < n; x++ {
		lo, hi := g.ItemLo[x], g.ItemHi[x]
		if lo > hi {
			g.candBase[x], g.candSpan[x] = 0, 0
		} else {
			g.candBase[x] = g.prefix[lo]
			g.candSpan[x] = g.prefix[hi+1] - g.prefix[lo]
		}
		if g.Compliant(x) {
			g.compliant.Add(x)
		} else {
			g.compliant.Remove(x)
		}
		if g.candSpan[x] > 0 {
			g.invSpan[x] = 1 / float64(g.candSpan[x])
		} else {
			g.invSpan[x] = 0
		}
		if g.candSpan[x] != oldSpan[x] || g.Compliant(x) != oldCompliant[x] {
			changed = append(changed, x)
		}
	}
	return changed, nil
}

// resizeInts returns s with length n, reusing its backing array when it can
// and preserving the existing prefix values.
func resizeInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]int, n)
	copy(out, s)
	return out
}
