package bipartite

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/budget"
)

// randomExplicit draws a graph on n+n vertices with edge probability p,
// guaranteeing no duplicate edges by construction.
func randomExplicit(t *testing.T, n int, p float64, rng *rand.Rand) *Explicit {
	t.Helper()
	adj := make([][]int, n)
	for w := 0; w < n; w++ {
		for x := 0; x < n; x++ {
			if rng.Float64() < p {
				adj[w] = append(adj[w], x)
			}
		}
	}
	e, err := NewExplicit(n, adj)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func ryserVsDP(t *testing.T, e *Explicit, label string) {
	t.Helper()
	want, err := e.countPerfectMatchings(nil)
	if err != nil {
		t.Fatalf("%s: dp: %v", label, err)
	}
	got, err := e.countPerfectMatchingsRyser(nil, nil)
	if err != nil {
		t.Fatalf("%s: ryser: %v", label, err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("%s: ryser permanent = %v, subset-DP = %v", label, got, want)
	}
}

// TestRyserMatchesDPExhaustive cross-checks the Gray-code kernel against the
// subset-DP on EVERY 0/1 matrix shape for n ≤ 3 — 2^(n²) graphs, including
// all-zero rows, empty graphs and the complete graph.
func TestRyserMatchesDPExhaustive(t *testing.T) {
	for n := 1; n <= 3; n++ {
		shapes := 1 << uint(n*n)
		for s := 0; s < shapes; s++ {
			adj := make([][]int, n)
			for w := 0; w < n; w++ {
				for x := 0; x < n; x++ {
					if s>>(uint(w*n+x))&1 == 1 {
						adj[w] = append(adj[w], x)
					}
				}
			}
			e := MustExplicit(n, adj)
			ryserVsDP(t, e, "exhaustive")
		}
	}
}

// TestRyserMatchesDPShapes covers every n up to 12 with structured shapes
// (complete, identity, cycle, anti-diagonal hole) plus random graphs across
// the density range, per the equivalence-oracle requirement of DESIGN.md §16.
func TestRyserMatchesDPShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for n := 1; n <= 12; n++ {
		complete := make([][]int, n)
		identity := make([][]int, n)
		cycle := make([][]int, n)
		hole := make([][]int, n)
		for w := 0; w < n; w++ {
			identity[w] = []int{w}
			cycle[w] = []int{w, (w + 1) % n}
			for x := 0; x < n; x++ {
				complete[w] = append(complete[w], x)
				if w+x != n-1 {
					hole[w] = append(hole[w], x)
				}
			}
		}
		ryserVsDP(t, MustExplicit(n, complete), "complete")
		ryserVsDP(t, MustExplicit(n, identity), "identity")
		if n >= 2 {
			ryserVsDP(t, MustExplicit(n, cycle), "cycle")
		}
		if n >= 2 {
			ryserVsDP(t, MustExplicit(n, hole), "anti-diagonal hole")
		}
		for trial := 0; trial < 30; trial++ {
			p := 0.1 + 0.85*rng.Float64()
			ryserVsDP(t, randomExplicit(t, n, p, rng), "random")
		}
	}
	// One larger spot check, still within the DP's practical range: complete
	// K_16 has permanent 16!.
	n := 16
	adj := make([][]int, n)
	for w := range adj {
		for x := 0; x < n; x++ {
			adj[w] = append(adj[w], x)
		}
	}
	want := big.NewInt(1)
	for k := int64(2); k <= int64(n); k++ {
		want.Mul(want, big.NewInt(k))
	}
	got, err := MustExplicit(n, adj).CountPerfectMatchings()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(want) != 0 {
		t.Fatalf("perm(K_%d) = %v, want %d! = %v", n, got, n, want)
	}
}

// TestRyserLargeNUnderBudget exercises the raised MaxExactN range: random
// graphs at n = 20..30 are accepted by CountPerfectMatchingsCtx, and an
// operation limit cuts the 2^n sweep off with a degradable budget error
// instead of running minutes of Gray-code steps.
func TestRyserLargeNUnderBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for n := 20; n <= MaxExactN; n++ {
		e := randomExplicit(t, n, 0.3+0.5*rng.Float64(), rng)
		ctx := budget.WithMaxOps(context.Background(), 1<<16)
		_, err := e.CountPerfectMatchingsCtx(ctx)
		if !errors.Is(err, budget.ErrBudgetExceeded) {
			t.Fatalf("n=%d: err = %v, want ErrBudgetExceeded", n, err)
		}
		if !budget.Degradable(err) {
			t.Fatalf("n=%d: budget error %v is not degradable", n, err)
		}
	}
	// Past the cap the size check fires before any work.
	big := randomExplicit(t, MaxExactN+1, 0.5, rng)
	if _, err := big.CountPerfectMatchingsCtx(context.Background()); err == nil {
		t.Fatalf("n=%d accepted, want size error", MaxExactN+1)
	}
}

// TestRyserFullRunN20 completes one n=20 count and checks it against the
// subset-DP — the largest size where the 2^n big.Int table is still cheap
// enough for a unit test.
func TestRyserFullRunN20(t *testing.T) {
	if testing.Short() {
		t.Skip("2^20 DP table in -short mode")
	}
	rng := rand.New(rand.NewSource(41))
	ryserVsDP(t, randomExplicit(t, 20, 0.25, rng), "n=20")
}

// TestDiagonalMatchingCountsMatchesEdgeInclusion pins the diagonal-minor
// path of exact expected cracks against the edge-inclusion DP it replaced:
// diag[x]/total must equal probs[x][x] for every diagonal edge.
func TestDiagonalMatchingCountsMatchesEdgeInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(9)
		e := randomExplicit(t, n, 0.3+0.6*rng.Float64(), rng)
		probs, refErr := e.EdgeInclusionProbabilityCtx(context.Background())
		total, diag, err := e.DiagonalMatchingCountsCtx(context.Background())
		if refErr != nil {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: edge-inclusion says %v, diagonal says %v", trial, refErr, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		tot := new(big.Float).SetInt(total)
		for x := 0; x < n; x++ {
			want := probs[x][x]
			got := 0.0
			if diag[x] != nil {
				got, _ = new(big.Float).Quo(new(big.Float).SetInt(diag[x]), tot).Float64()
			}
			if got != want {
				t.Fatalf("trial %d: diag inclusion P(%d)=%v, edge-inclusion DP %v", trial, x, got, want)
			}
		}
	}
}

// TestRyserWarmAccumulatorZeroAllocs pins the accumulator core at zero
// allocations with warm scratch: the whole Gray-code sweep — row-sum
// updates, 192-bit products, 256-bit signed accumulation — runs in
// fixed-width words, with big.Int confined to the conversion boundary. This
// is the bipartite-side row of the allocation-regression suite started in
// internal/matching/alloc_test.go.
func TestRyserWarmAccumulatorZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := randomExplicit(t, 14, 0.6, rng)
	sc := &ryserScratch{}
	if _, err := e.ryserWords(nil, sc); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.ryserWords(nil, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm ryserWords allocates %v per run, want 0", allocs)
	}
}
