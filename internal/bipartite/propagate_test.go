package bipartite

import (
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/dataset"
)

// staircase builds the cascade example of Figure 6(a) generalized to n items:
// distinct frequencies f_1 < ... < f_n, anonymized item i′ at f_i, and item
// j's belief interval [f_1, f_j], so that O_j = j before propagation and
// every edge is forced after it.
func staircase(t testing.TB, n int) *Graph {
	t.Helper()
	m := 2 * n
	counts := make([]int, n)
	for i := range counts {
		counts[i] = i + 1
	}
	ft, err := dataset.NewTable(m, counts)
	if err != nil {
		t.Fatal(err)
	}
	freqs := ft.Frequencies()
	ivs := make([]belief.Interval, n)
	for x := range ivs {
		ivs[x] = belief.Interval{Lo: freqs[0], Hi: freqs[x]}
	}
	g, err := Build(belief.MustNew(ivs), dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPropagateFigure6a(t *testing.T) {
	g := staircase(t, 4)
	wantDeg := []int{1, 2, 3, 4}
	for x, w := range wantDeg {
		if got := g.Outdegree(x); got != w {
			t.Fatalf("pre-propagation Outdegree(%d) = %d, want %d", x, got, w)
		}
	}
	p, err := g.Propagate()
	if err != nil {
		t.Fatalf("Propagate: %v", err)
	}
	if len(p.Forced) != 4 {
		t.Fatalf("forced %d edges, want 4", len(p.Forced))
	}
	if p.ForcedCracks() != 4 {
		t.Errorf("ForcedCracks = %d, want 4 (the paper: the number of cracks is 4)", p.ForcedCracks())
	}
	for x, d := range p.Outdeg {
		if d != 1 {
			t.Errorf("post-propagation Outdeg[%d] = %d, want 1", x, d)
		}
	}
}

func TestPropagateCascadeDepth(t *testing.T) {
	// The n-item staircase needs a full cascade; make sure a long one works.
	g := staircase(t, 200)
	p, err := g.Propagate()
	if err != nil {
		t.Fatalf("Propagate: %v", err)
	}
	if p.ForcedCracks() != 200 {
		t.Errorf("ForcedCracks = %d, want 200", p.ForcedCracks())
	}
}

func TestPropagateNoOpOnPointValued(t *testing.T) {
	// Point-valued groups of size >= 2 force nothing.
	ft, err := dataset.NewTable(10, []int{5, 5, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(belief.PointValued(ft.Frequencies()), dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Propagate()
	if err != nil {
		t.Fatalf("Propagate: %v", err)
	}
	if len(p.Forced) != 0 {
		t.Errorf("forced %d edges, want 0", len(p.Forced))
	}
	for x, d := range p.Outdeg {
		if d != 2 {
			t.Errorf("Outdeg[%d] = %d, want 2", x, d)
		}
	}
}

func TestPropagateSingletons(t *testing.T) {
	// Singleton groups with point beliefs are forced immediately (the hacker
	// "comes up with the cracks directly", Section 3.2).
	ft, err := dataset.NewTable(10, []int{5, 4, 5, 5, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(belief.PointValued(ft.Frequencies()), dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Propagate()
	if err != nil {
		t.Fatalf("Propagate: %v", err)
	}
	if len(p.Forced) != 2 || p.ForcedCracks() != 2 {
		t.Errorf("forced %d (cracks %d), want 2 forced cracks (items 2' and 5')", len(p.Forced), p.ForcedCracks())
	}
}

// TestPropagateForcedEdgesAreInEveryMatching cross-validates propagation
// against exhaustive enumeration on random small graphs: every forced pair
// must appear in every perfect matching, and post-propagation outdegrees must
// equal the true number of distinct partners across matchings' support.
func TestPropagateForcedEdgesAreInEveryMatching(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tested := 0
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(6)
		m := 6 + rng.Intn(10)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft, err := dataset.NewTable(m, counts)
		if err != nil {
			t.Fatal(err)
		}
		ivs := make([]belief.Interval, n)
		freqs := ft.Frequencies()
		for i := range ivs {
			// Mix of compliant and slightly-off intervals.
			base := freqs[i]
			if rng.Intn(4) == 0 {
				base = rng.Float64()
			}
			w := rng.Float64() * 0.4
			ivs[i] = belief.Interval{Lo: base - w, Hi: base + w}.Clamp()
		}
		g, err := Build(belief.MustNew(ivs), dataset.GroupItems(ft))
		if err != nil {
			t.Fatal(err)
		}
		e := g.ToExplicit()
		if !e.HasPerfectMatching() {
			// Propagation must not claim success with forced edges that
			// complete a matching; it may or may not detect infeasibility
			// (it is a sound but incomplete test), so just require that IF
			// it succeeds, it never forces a non-edge.
			if p, err := g.Propagate(); err == nil {
				for _, fp := range p.Forced {
					if !g.HasEdge(fp.Anon, fp.Item) {
						t.Fatalf("trial %d: forced non-edge %+v", trial, fp)
					}
				}
			}
			continue
		}
		p, err := g.Propagate()
		if err != nil {
			t.Fatalf("trial %d: Propagate failed on feasible graph: %v", trial, err)
		}
		tested++
		// Collect all perfect matchings.
		var matchings [][]int
		if err := e.EnumeratePerfectMatchings(100000, func(mt []int) {
			matchings = append(matchings, append([]int(nil), mt...))
		}); err != nil {
			t.Fatal(err)
		}
		for _, fp := range p.Forced {
			for _, mt := range matchings {
				if mt[fp.Anon] != fp.Item {
					t.Fatalf("trial %d: forced edge %+v absent from matching %v", trial, fp, mt)
				}
			}
		}
		// Post-propagation outdegree must never undercount the number of
		// distinct anonymized partners item x takes across all matchings.
		partners := make([]map[int]bool, n)
		for x := range partners {
			partners[x] = map[int]bool{}
		}
		for _, mt := range matchings {
			for w, x := range mt {
				partners[x][w] = true
			}
		}
		for x := 0; x < n; x++ {
			if p.Outdeg[x] < len(partners[x]) {
				t.Fatalf("trial %d: Outdeg[%d] = %d < %d distinct partners",
					trial, x, p.Outdeg[x], len(partners[x]))
			}
		}
	}
	if tested < 50 {
		t.Errorf("only %d feasible graphs exercised; want >= 50", tested)
	}
}

func TestPropagateInfeasibleGroup(t *testing.T) {
	// Two items share a single candidate group of size 1 elsewhere:
	// counts (2,2,5) with item beliefs: items 0,1 -> {f=0.5 group}, item 2
	// ignorant. Anon group at 0.2 has two members but only item 2 covers it:
	// cover(0.2-group)=1 < size 2 -> infeasible.
	ft, err := dataset.NewTable(10, []int{2, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	bf := belief.MustNew([]belief.Interval{
		{Lo: 0.5, Hi: 0.5}, {Lo: 0.5, Hi: 0.5}, {Lo: 0, Hi: 1},
	})
	g, err := Build(bf, dataset.GroupItems(ft))
	if err != nil {
		t.Fatal(err)
	}
	if g.Feasible() {
		t.Fatal("graph should be infeasible")
	}
	if _, err := g.Propagate(); err != ErrInfeasible {
		t.Errorf("Propagate = %v, want ErrInfeasible", err)
	}
}
