package bipartite

import (
	"context"
	"fmt"
	"math/big"
	"math/bits"
	"math/rand"

	"repro/internal/budget"
)

// ExactSampler draws perfect matchings of a small explicit graph EXACTLY
// uniformly, using the same subset dynamic program as CountPerfectMatchings:
// row w is matched left to right, choosing column x with probability
// proportional to the number of completions dp[remaining \ {x}]. It is the
// sample-level ground truth the MCMC sampler is validated against; the table
// costs O(2^n) memory, so n ≤ MaxExactTableN.
type ExactSampler struct {
	e  *Explicit
	dp []*big.Int
}

// NewExactSampler precomputes the completion-count table. It returns
// ErrInfeasible when the graph has no perfect matching.
func NewExactSampler(e *Explicit) (*ExactSampler, error) {
	return NewExactSamplerCtx(context.Background(), e)
}

// NewExactSamplerCtx is NewExactSampler under a work budget: one operation
// per dp entry, so building the O(2^n) table — the single most expensive
// allocation in the exact tier — respects deadlines and operation limits.
func NewExactSamplerCtx(ctx context.Context, e *Explicit) (*ExactSampler, error) {
	if e.N > MaxExactTableN {
		return nil, fmt.Errorf("bipartite: exact sampling needs n <= %d, got %d", MaxExactTableN, e.N)
	}
	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return nil, err
	}
	n := e.N
	size := 1 << uint(n)
	// dp[s] = matchings of the first popcount(s) left vertices onto exactly
	// the right-subset s (identical to CountPerfectMatchings' table).
	dp := make([]*big.Int, size)
	dp[0] = big.NewInt(1)
	for s := 1; s < size; s++ {
		if err := bud.Charge(1); err != nil {
			return nil, fmt.Errorf("bipartite: exact sampler table: %w", err)
		}
		row := bits.OnesCount(uint(s)) - 1
		acc := new(big.Int)
		for _, x := range e.Adj[row] {
			bit := 1 << uint(x)
			if s&bit != 0 && dp[s^bit].Sign() > 0 {
				acc.Add(acc, dp[s^bit])
			}
		}
		dp[s] = acc
	}
	if dp[size-1].Sign() == 0 {
		return nil, ErrInfeasible
	}
	return &ExactSampler{e: e, dp: dp}, nil
}

// Count returns the total number of perfect matchings.
func (s *ExactSampler) Count() *big.Int {
	return new(big.Int).Set(s.dp[len(s.dp)-1])
}

// Sample draws one uniformly random perfect matching, as match[w] = x.
//
// Walking rows from the LAST to the first keeps the dp table applicable: at
// step for row w (descending), the set `rem` of still-free right vertices
// has popcount w+1, and dp[rem ^ bit(x)] counts the ways rows 0..w-1 can
// finish after assigning x to w, so drawing x with probability
// dp[rem ^ bit(x)] / dp[rem] yields the exact uniform distribution by the
// chain rule.
//
//lint:allow ctxbudget a draw is at most n·deg big-int steps with n ≤ MaxExactTableN; the 2^n cost lives in NewExactSamplerCtx
func (s *ExactSampler) Sample(rng *rand.Rand) []int {
	n := s.e.N
	match := make([]int, n)
	rem := 1<<uint(n) - 1
	r := new(big.Int)
	//lint:allow loopbudget bounded n·deg with n ≤ MaxExactTableN per the ctxbudget allow above; the exponential cost is budgeted in NewExactSamplerCtx
	for w := n - 1; w >= 0; w-- {
		// Draw a uniform integer in [0, dp[rem]).
		r.Rand(rng, s.dp[rem])
		chosen := -1
		for _, x := range s.e.Adj[w] {
			bit := 1 << uint(x)
			if rem&bit == 0 {
				continue
			}
			c := s.dp[rem^bit]
			if c.Sign() == 0 {
				continue
			}
			if r.Cmp(c) < 0 {
				chosen = x
				break
			}
			r.Sub(r, c)
		}
		if chosen < 0 {
			// Cannot happen: dp[rem] > 0 guarantees a completion.
			panic("bipartite: exact sampler lost its invariant")
		}
		match[w] = chosen
		rem ^= 1 << uint(chosen)
	}
	return match
}
