package bipartite

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/belief"
	"repro/internal/dataset"
)

// bigMartTable is the support-count table of the paper's BigMart example
// (Figure 1): frequencies (.5,.4,.5,.5,.3,.5) over 10 transactions, items
// 1..6 mapped to ids 0..5.
func bigMartTable(t testing.TB) *dataset.FrequencyTable {
	t.Helper()
	ft, err := dataset.NewTable(10, []int{5, 4, 5, 5, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

// beliefH is the belief function h of Figure 2.
func beliefH() *belief.Function {
	return belief.MustNew([]belief.Interval{
		{Lo: 0, Hi: 1}, {Lo: 0.4, Hi: 0.5}, {Lo: 0.5, Hi: 0.5},
		{Lo: 0.4, Hi: 0.6}, {Lo: 0.1, Hi: 0.4}, {Lo: 0.5, Hi: 0.5},
	})
}

func buildGraph(t testing.TB, bf *belief.Function, ft *dataset.FrequencyTable) *Graph {
	t.Helper()
	g, err := Build(bf, dataset.GroupItems(ft))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildBigMartH(t *testing.T) {
	g := buildGraph(t, beliefH(), bigMartTable(t))
	if g.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3 (freqs .3,.4,.5)", g.NumGroups())
	}
	// Paper (Section 2.3): 1' maps to {1,2,3,4,6}; 2' to {1,2,4,5};
	// 5' to... h(1)=[0,1] and h(5)=[0.1,0.4] contain 0.3 -> {1,5}.
	// In 0-based ids: anon0 -> {0,1,2,3,5}; anon1 -> {0,1,3,4}; anon4 -> {0,4}.
	wantEdges := map[int][]int{
		0: {0, 1, 2, 3, 5},
		1: {0, 1, 3, 4},
		4: {0, 4},
	}
	// Anon items with frequency 0.5 all behave like anon0.
	for _, w := range []int{2, 3, 5} {
		wantEdges[w] = wantEdges[0]
	}
	for w, want := range wantEdges {
		for x := 0; x < 6; x++ {
			inWant := false
			for _, y := range want {
				if y == x {
					inWant = true
				}
			}
			if got := g.HasEdge(w, x); got != inWant {
				t.Errorf("HasEdge(%d',%d) = %v, want %v", w, x, got, inWant)
			}
		}
	}
	// Outdegrees: item0 [0,1] -> 6; item1 [.4,.5] -> 5; item2 {.5} -> 4;
	// item3 [.4,.6] -> 5; item4 [.1,.4] -> 2; item5 {.5} -> 4.
	wantDeg := []int{6, 5, 4, 5, 2, 4}
	got := g.Outdegrees()
	for x, w := range wantDeg {
		if got[x] != w {
			t.Errorf("Outdegree(%d) = %d, want %d", x, got[x], w)
		}
	}
	if g.NumEdges() != 6+5+4+5+2+4 {
		t.Errorf("NumEdges = %d, want 26", g.NumEdges())
	}
	if !g.Compliant(4) || g.CompliantCount() != 6 {
		t.Errorf("h should be compliant on all items; count = %d", g.CompliantCount())
	}
}

func TestBuildIgnorantAndPointValued(t *testing.T) {
	ft := bigMartTable(t)
	freqs := ft.Frequencies()

	ig := buildGraph(t, belief.Ignorant(6), ft)
	for x := 0; x < 6; x++ {
		if ig.Outdegree(x) != 6 {
			t.Errorf("ignorant Outdegree(%d) = %d, want 6", x, ig.Outdegree(x))
		}
	}

	pv := buildGraph(t, belief.PointValued(freqs), ft)
	// Groups: {4} size 1 (f=.3), {1} size 1 (f=.4), {0,2,3,5} size 4 (f=.5).
	wantDeg := []int{4, 1, 4, 4, 1, 4}
	for x, w := range wantDeg {
		if pv.Outdegree(x) != w {
			t.Errorf("point-valued Outdegree(%d) = %d, want %d", x, pv.Outdegree(x), w)
		}
	}
}

func TestBuildDomainMismatch(t *testing.T) {
	ft := bigMartTable(t)
	if _, err := Build(belief.Ignorant(5), dataset.GroupItems(ft)); err == nil {
		t.Error("Build with mismatched domains: want error")
	}
}

func TestNonCompliantEmptyRange(t *testing.T) {
	ft := bigMartTable(t)
	// Item 0's interval misses every observed frequency.
	bf := belief.MustNew([]belief.Interval{
		{Lo: 0.8, Hi: 0.9}, {Lo: 0, Hi: 1}, {Lo: 0, Hi: 1},
		{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}, {Lo: 0, Hi: 1},
	})
	g := buildGraph(t, bf, ft)
	if g.Outdegree(0) != 0 {
		t.Errorf("Outdegree(0) = %d, want 0 (interval misses all groups)", g.Outdegree(0))
	}
	if g.Compliant(0) {
		t.Error("item 0 should be non-compliant")
	}
	if g.Feasible() {
		t.Error("graph with a degree-0 item cannot have a perfect matching")
	}
	if _, err := g.Propagate(); err != ErrInfeasible {
		t.Errorf("Propagate = %v, want ErrInfeasible", err)
	}
}

// TestGroupRangeBoundaries pins the closed-interval semantics of groupRange:
// a frequency group is covered exactly when belief.Interval.Contains admits
// its frequency — both interval endpoints included, with Epsilon slack on
// each side. The Hi+ε case is the historical off-by-ε: SearchFloat64s on the
// upper bound excluded a frequency lying exactly at Hi+ε while Contains
// included it, so HasEdge and Contains disagreed there.
func TestGroupRangeBoundaries(t *testing.T) {
	// Boundary frequencies are computed with runtime float64 arithmetic on
	// variables, exactly as groupRange and Contains compute them — Go folds
	// untyped-constant expressions at infinite precision, which can land one
	// ulp away from the runtime value and would test the wrong boundary.
	eps := float64(belief.Epsilon)
	iv := belief.Interval{Lo: 0.4, Hi: 0.6}
	cases := []struct {
		name string
		f    float64
	}{
		{"at Lo", iv.Lo},
		{"at Hi", iv.Hi},
		{"inside", 0.5},
		{"at Lo-eps", iv.Lo - eps},
		{"at Hi+eps", iv.Hi + eps},
		{"at Lo-2eps", iv.Lo - 2*eps},
		{"at Hi+2eps", iv.Hi + 2*eps},
		{"well below", 0.1},
		{"well above", 0.9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			freqs := []float64{0.1, tc.f, 0.9}
			sort.Float64s(freqs)
			i := sort.SearchFloat64s(freqs, tc.f)
			lo, hi := groupRange(freqs, iv)
			got := lo <= i && i <= hi
			want := iv.Contains(tc.f)
			if got != want {
				t.Errorf("groupRange covers f=%v: %v, Contains: %v", tc.f, got, want)
			}
		})
	}
	// Explicit expectations, independent of Contains: exact endpoints and the
	// ±ε slack are in; anything beyond 2ε is out.
	for _, in := range []float64{iv.Lo, iv.Hi, 0.5, iv.Lo - eps, iv.Hi + eps} {
		lo, hi := groupRange([]float64{in}, iv)
		if lo > hi {
			t.Errorf("groupRange: frequency %v should be covered by %v", in, iv)
		}
	}
	for _, out := range []float64{iv.Lo - 2*eps, iv.Hi + 2*eps, 0, 1} {
		lo, hi := groupRange([]float64{out}, iv)
		if lo <= hi {
			t.Errorf("groupRange: frequency %v should not be covered by %v", out, iv)
		}
	}
}

// TestHasEdgeMatchesContains is the randomized agreement property behind
// TestGroupRangeBoundaries: for every pair (w, x) of a built graph,
// HasEdge(w, x) must equal bf.Contains(x, freq(w)), including for intervals
// whose bounds sit exactly ±ε or ±2ε off an observed frequency.
func TestHasEdgeMatchesContains(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		m := 8 + rng.Intn(12)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft, err := dataset.NewTable(m, counts)
		if err != nil {
			t.Fatal(err)
		}
		freqs := ft.Frequencies()
		ivs := make([]belief.Interval, n)
		for i := range ivs {
			// Mix plain random intervals with adversarial ones whose bounds
			// land exactly on an observed frequency shifted by 0, ±ε or ±2ε.
			switch rng.Intn(3) {
			case 0:
				a, b := rng.Float64(), rng.Float64()
				if a > b {
					a, b = b, a
				}
				ivs[i] = belief.Interval{Lo: a, Hi: b}
			default:
				f := freqs[rng.Intn(n)]
				shifts := []float64{0, belief.Epsilon, -belief.Epsilon, 2 * belief.Epsilon, -2 * belief.Epsilon}
				lo := f - shifts[rng.Intn(len(shifts))]
				hi := f + shifts[rng.Intn(len(shifts))]
				// Clamp each bound into [0,1] before ordering: Interval.Clamp
				// alone would invert a pair like lo=hi=1+2ε into [1+2ε, 1].
				lo = math.Min(1, math.Max(0, lo))
				hi = math.Min(1, math.Max(0, hi))
				if lo > hi {
					lo, hi = hi, lo
				}
				ivs[i] = belief.Interval{Lo: lo, Hi: hi}
			}
		}
		bf := belief.MustNew(ivs)
		g := buildGraph(t, bf, ft)
		for x := 0; x < n; x++ {
			for w := 0; w < n; w++ {
				if got, want := g.HasEdge(w, x), bf.Contains(x, freqs[w]); got != want {
					t.Fatalf("trial %d: HasEdge(%d,%d)=%v but Contains(%d, %v)=%v (interval %v)",
						trial, w, x, got, x, freqs[w], want, bf.Interval(x))
				}
			}
		}
	}
}

func TestToExplicitMatchesCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		m := 10 + rng.Intn(20)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft, err := dataset.NewTable(m, counts)
		if err != nil {
			t.Fatal(err)
		}
		bf := belief.RandomCompliant(ft.Frequencies(), 0.3, rng)
		g := buildGraph(t, bf, ft)
		e := g.ToExplicit()
		for w := 0; w < n; w++ {
			for x := 0; x < n; x++ {
				if g.HasEdge(w, x) != e.HasEdge(w, x) {
					t.Fatalf("trial %d: edge (%d,%d) mismatch compact=%v explicit=%v",
						trial, w, x, g.HasEdge(w, x), e.HasEdge(w, x))
				}
			}
		}
		deg := g.Outdegrees()
		for x := 0; x < n; x++ {
			c := 0
			for w := 0; w < n; w++ {
				if e.HasEdge(w, x) {
					c++
				}
			}
			if deg[x] != c {
				t.Fatalf("trial %d: Outdegree(%d) = %d, explicit says %d", trial, x, deg[x], c)
			}
		}
		if g.NumEdges() != e.NumEdges() {
			t.Fatalf("trial %d: NumEdges mismatch", trial)
		}
	}
}

func TestIdentityMatching(t *testing.T) {
	ft := bigMartTable(t)
	g := buildGraph(t, beliefH(), ft)
	m, err := g.IdentityMatching()
	if err != nil {
		t.Fatalf("IdentityMatching on compliant graph: %v", err)
	}
	for x, w := range m {
		if w != x {
			t.Errorf("identity matching maps %d to %d", x, w)
		}
	}
	// Non-compliant function: no identity matching.
	bf := belief.MustNew([]belief.Interval{
		{Lo: 0.8, Hi: 0.9}, {Lo: 0, Hi: 1}, {Lo: 0, Hi: 1},
		{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}, {Lo: 0, Hi: 1},
	})
	g2 := buildGraph(t, bf, ft)
	if _, err := g2.IdentityMatching(); err == nil {
		t.Error("IdentityMatching on non-compliant graph: want error")
	}
}

func TestPerfectMatchingGreedyAgainstHopcroftKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	feasibleSeen, infeasibleSeen := 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		m := 8 + rng.Intn(12)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft, err := dataset.NewTable(m, counts)
		if err != nil {
			t.Fatal(err)
		}
		// Random, possibly non-compliant intervals.
		ivs := make([]belief.Interval, n)
		for i := range ivs {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			ivs[i] = belief.Interval{Lo: a, Hi: b}
		}
		g := buildGraph(t, belief.MustNew(ivs), ft)
		match, err := g.PerfectMatching()
		want := g.ToExplicit().HasPerfectMatching()
		if (err == nil) != want {
			t.Fatalf("trial %d: greedy feasibility %v, Hopcroft-Karp %v", trial, err == nil, want)
		}
		if err == nil {
			feasibleSeen++
			used := make([]bool, n)
			for x, w := range match {
				if w < 0 || w >= n || used[w] {
					t.Fatalf("trial %d: invalid matching %v", trial, match)
				}
				used[w] = true
				if !g.HasEdge(w, x) {
					t.Fatalf("trial %d: matching uses non-edge (%d,%d)", trial, w, x)
				}
			}
		} else {
			infeasibleSeen++
		}
	}
	if feasibleSeen == 0 || infeasibleSeen == 0 {
		t.Errorf("test did not cover both outcomes: feasible=%d infeasible=%d", feasibleSeen, infeasibleSeen)
	}
}

// TestCandidateLayoutMatchesHasEdge is the flat-kernel layout oracle: on
// random tables and belief functions, item x's candidate window must contain
// exactly the anonymized items w with HasEdge(w, x), in group order, and its
// span must equal the outdegree. The sampler's O(1) candidate draw is
// correct iff this holds.
func TestCandidateLayoutMatchesHasEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		m := 8 + rng.Intn(12)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft, err := dataset.NewTable(m, counts)
		if err != nil {
			t.Fatal(err)
		}
		bf := belief.RandomCompliant(ft.Frequencies(), 0.3, rng)
		g := buildGraph(t, bf, ft)
		flat, _, span := g.CandidateLayout()
		if len(flat) != g.Items() {
			t.Fatalf("trial %d: flat has %d entries, want n=%d", trial, len(flat), g.Items())
		}
		for x := 0; x < g.Items(); x++ {
			cands := g.Candidates(x)
			if len(cands) != span[x] || span[x] != g.Outdegree(x) {
				t.Fatalf("trial %d item %d: |candidates| = %d, span = %d, outdegree = %d",
					trial, x, len(cands), span[x], g.Outdegree(x))
			}
			inWindow := map[int]bool{}
			lastGroup := -1
			for _, w := range cands {
				if !g.HasEdge(w, x) {
					t.Fatalf("trial %d: candidate %d of item %d is not an edge", trial, w, x)
				}
				if gw := g.ItemGroup[w]; gw < lastGroup {
					t.Fatalf("trial %d item %d: candidates not in group order", trial, x)
				} else {
					lastGroup = gw
				}
				inWindow[w] = true
			}
			for w := 0; w < g.Items(); w++ {
				if g.HasEdge(w, x) && !inWindow[w] {
					t.Fatalf("trial %d: edge (%d,%d) missing from candidate window", trial, w, x)
				}
			}
		}
	}
}

// TestCandidatesNonCompliantEmpty pins the zero-span representation of items
// with no consistent counterpart.
func TestCandidatesNonCompliantEmpty(t *testing.T) {
	ft := bigMartTable(t)
	ivs := make([]belief.Interval, 6)
	for i := range ivs {
		ivs[i] = belief.Interval{Lo: 0.4, Hi: 0.5}
	}
	ivs[2] = belief.Interval{Lo: 0.9, Hi: 0.95} // no observed frequency up there
	g := buildGraph(t, belief.MustNew(ivs), ft)
	if len(g.Candidates(2)) != 0 {
		t.Errorf("non-compliant item has %d candidates, want 0", len(g.Candidates(2)))
	}
	if g.Outdegree(2) != 0 {
		t.Errorf("Outdegree = %d, want 0", g.Outdegree(2))
	}
}
