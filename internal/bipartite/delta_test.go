package bipartite

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/belief"
	"repro/internal/dataset"
)

func randomDiffFor(rng *rand.Rand, ft *dataset.FrequencyTable) *dataset.CountsDiff {
	d := &dataset.CountsDiff{}
	if rng.Intn(2) == 0 {
		d.DTransactions = 1 + rng.Intn(5)
	}
	newM := ft.NTransactions + d.DTransactions
	k := 1 + rng.Intn(ft.NItems)
	for x := 0; x < ft.NItems && len(d.Items) < k; x++ {
		if rng.Intn(2) == 1 {
			continue
		}
		c := rng.Intn(newM + 1)
		if c == ft.Counts[x] {
			c = (c + 1) % (newM + 1)
		}
		d.Items = append(d.Items, x)
		d.Deltas = append(d.Deltas, c-ft.Counts[x])
	}
	return d
}

// graphEqual compares every field of the two graphs, including the
// unexported prefix sums and flat candidate layout — the full structural
// state downstream math reads.
func graphEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if !reflect.DeepEqual(got.Freqs, want.Freqs) {
		t.Fatalf("Freqs diverged\n got %v\nwant %v", got.Freqs, want.Freqs)
	}
	if !reflect.DeepEqual(got.GroupSize, want.GroupSize) {
		t.Fatalf("GroupSize diverged\n got %v\nwant %v", got.GroupSize, want.GroupSize)
	}
	if !reflect.DeepEqual(got.GroupItems, want.GroupItems) {
		t.Fatalf("GroupItems diverged\n got %v\nwant %v", got.GroupItems, want.GroupItems)
	}
	if !reflect.DeepEqual(got.ItemGroup, want.ItemGroup) {
		t.Fatalf("ItemGroup diverged\n got %v\nwant %v", got.ItemGroup, want.ItemGroup)
	}
	if !reflect.DeepEqual(got.ItemLo, want.ItemLo) || !reflect.DeepEqual(got.ItemHi, want.ItemHi) {
		t.Fatalf("belief ranges diverged\n got lo=%v hi=%v\nwant lo=%v hi=%v",
			got.ItemLo, got.ItemHi, want.ItemLo, want.ItemHi)
	}
	if !reflect.DeepEqual(got.prefix, want.prefix) {
		t.Fatalf("prefix diverged\n got %v\nwant %v", got.prefix, want.prefix)
	}
	if !reflect.DeepEqual(got.flat, want.flat) {
		t.Fatalf("flat layout diverged\n got %v\nwant %v", got.flat, want.flat)
	}
	if !reflect.DeepEqual(got.candBase, want.candBase) || !reflect.DeepEqual(got.candSpan, want.candSpan) {
		t.Fatalf("candidate windows diverged\n got base=%v span=%v\nwant base=%v span=%v",
			got.candBase, got.candSpan, want.candBase, want.candSpan)
	}
	if !got.compliant.Equal(want.compliant) {
		t.Fatalf("compliance words diverged\n got %v\nwant %v", got.compliant.Bools(), want.compliant.Bools())
	}
	if !reflect.DeepEqual(got.invSpan, want.invSpan) {
		t.Fatalf("outdegree reciprocals diverged\n got %v\nwant %v", got.invSpan, want.invSpan)
	}
}

// TestRebinMatchesBuild is the structural half of the delta-equivalence
// property: over random (table, diff) pairs — applied singly and in chains —
// a Rebin-patched graph is field-for-field identical to Build against the
// post-diff grouping and belief function, and the reported changed set is
// exactly the set of items whose outdegree or compliancy moved.
func TestRebinMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 250; trial++ {
		n := 2 + rng.Intn(10)
		m := 6 + rng.Intn(25)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft, err := dataset.NewTable(m, counts)
		if err != nil {
			t.Fatal(err)
		}
		gr := dataset.GroupItems(ft)
		deltaMed := gr.MedianGap()
		bf := belief.UniformWidth(ft.Frequencies(), deltaMed)
		g, err := Build(bf, gr)
		if err != nil {
			t.Fatal(err)
		}
		steps := 1 + rng.Intn(4)
		for step := 0; step < steps; step++ {
			d := randomDiffFor(rng, ft)
			if err := ft.ApplyDiff(d); err != nil {
				t.Fatalf("trial %d step %d: ApplyDiff: %v", trial, step, err)
			}
			postGr, rd, err := dataset.ApplyDiffGrouping(gr, ft, d)
			if err != nil {
				t.Fatalf("trial %d step %d: ApplyDiffGrouping: %v", trial, step, err)
			}
			postMed := postGr.MedianGap()
			postBF := belief.UniformWidth(ft.Frequencies(), postMed)
			up := RebinUpdate{
				Grouping:         postGr,
				Delta:            rd,
				ChangedIntervals: rd.Moved,
				AllIntervals:     postMed != deltaMed || d.DTransactions != 0,
			}
			prevSpan := append([]int(nil), g.candSpan...)
			prevCompliant := make([]bool, n)
			for x := 0; x < n; x++ {
				prevCompliant[x] = g.Compliant(x)
			}
			changed, err := g.Rebin(postBF, up)
			if err != nil {
				t.Fatalf("trial %d step %d: Rebin: %v", trial, step, err)
			}
			want, err := Build(postBF, postGr)
			if err != nil {
				t.Fatalf("trial %d step %d: Build: %v", trial, step, err)
			}
			graphEqual(t, g, want)
			var wantChanged []int
			for x := 0; x < n; x++ {
				if want.candSpan[x] != prevSpan[x] || want.Compliant(x) != prevCompliant[x] {
					wantChanged = append(wantChanged, x)
				}
			}
			if !reflect.DeepEqual(changed, wantChanged) {
				t.Fatalf("trial %d step %d: changed = %v, want %v", trial, step, changed, wantChanged)
			}
			gr, deltaMed = postGr, postMed
		}
	}
}

func TestRebinRejectsMismatch(t *testing.T) {
	ft, err := dataset.NewTable(10, []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	gr := dataset.GroupItems(ft)
	bf := belief.Ignorant(3)
	g, err := Build(bf, gr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Rebin(bf, RebinUpdate{}); err == nil {
		t.Error("Rebin without grouping/delta: want error")
	}
	if _, err := g.Rebin(belief.Ignorant(4), RebinUpdate{Grouping: gr, Delta: &dataset.RebinDelta{FirstGroup: 3}}); err == nil {
		t.Error("Rebin with mismatched belief domain: want error")
	}
	if _, err := g.Rebin(bf, RebinUpdate{Grouping: gr, Delta: &dataset.RebinDelta{FirstGroup: 9}}); err == nil {
		t.Error("Rebin with out-of-range FirstGroup: want error")
	}
	if _, err := g.Rebin(bf, RebinUpdate{Grouping: gr, Delta: &dataset.RebinDelta{FirstGroup: 3}, ChangedIntervals: []int{7}}); err == nil {
		t.Error("Rebin with out-of-range changed interval: want error")
	}
}

// solveLoMinusEps finds an interval lower bound lo such that the runtime
// subtraction lo - belief.Epsilon lands EXACTLY on f, by nudging the naive
// f + ε candidate a few ulps. Not every f admits one (rounding can skip
// values); ok reports success.
func solveLoMinusEps(f float64) (lo float64, ok bool) {
	lo = f + belief.Epsilon
	for i := 0; i < 8 && lo-belief.Epsilon > f; i++ {
		lo = math.Nextafter(lo, math.Inf(-1))
	}
	for i := 0; i < 8 && lo-belief.Epsilon < f; i++ {
		lo = math.Nextafter(lo, math.Inf(1))
	}
	return lo, lo-belief.Epsilon == f
}

// solveHiPlusEps is the symmetric upper-bound solver: hi + ε == f exactly.
func solveHiPlusEps(f float64) (hi float64, ok bool) {
	hi = f - belief.Epsilon
	for i := 0; i < 8 && hi+belief.Epsilon > f; i++ {
		hi = math.Nextafter(hi, math.Inf(-1))
	}
	for i := 0; i < 8 && hi+belief.Epsilon < f; i++ {
		hi = math.Nextafter(hi, math.Inf(1))
	}
	return hi, hi+belief.Epsilon == f
}

// TestGroupRangeExactEpsilonBoundary drives groupRange at frequencies lying
// EXACTLY at the runtime values of Lo-ε and Hi+ε — the two points where
// Contains flips from admit to reject. The historical Hi+ε bug lived here;
// the Lo-ε audit (see groupRange) concluded SearchFloat64s' ≥ semantics
// already agree with Contains' f ≥ Lo-ε, and this test pins that for 500
// random frequencies rather than the single hand-picked one in
// TestGroupRangeBoundaries. A divergence on either side fails loudly.
func TestGroupRangeExactEpsilonBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	loSolved, hiSolved := 0, 0
	for trial := 0; trial < 500; trial++ {
		f := rng.Float64()
		if lo, ok := solveLoMinusEps(f); ok && lo <= 1 {
			loSolved++
			iv := belief.Interval{Lo: lo, Hi: math.Min(1, lo+rng.Float64()*0.1)}
			if !iv.Contains(f) {
				t.Fatalf("trial %d: Contains(%v) false at exact Lo-ε (lo=%v)", trial, f, lo)
			}
			freqs := []float64{f}
			glo, ghi := groupRange(freqs, iv)
			if glo > ghi || glo != 0 {
				t.Fatalf("trial %d: groupRange excludes f=%v at exact Lo-ε (lo=%v): [%d,%d]",
					trial, f, lo, glo, ghi)
			}
		}
		if hi, ok := solveHiPlusEps(f); ok && hi >= 0 {
			hiSolved++
			iv := belief.Interval{Lo: math.Max(0, hi-rng.Float64()*0.1), Hi: hi}
			if !iv.Contains(f) {
				t.Fatalf("trial %d: Contains(%v) false at exact Hi+ε (hi=%v)", trial, f, hi)
			}
			freqs := []float64{f}
			glo, ghi := groupRange(freqs, iv)
			if glo > ghi {
				t.Fatalf("trial %d: groupRange excludes f=%v at exact Hi+ε (hi=%v): [%d,%d]",
					trial, f, hi, glo, ghi)
			}
		}
		// One ulp past the slack on each side must be excluded by both.
		pastLo := math.Nextafter(f+belief.Epsilon, math.Inf(1))
		for pastLo-belief.Epsilon <= f {
			pastLo = math.Nextafter(pastLo, math.Inf(1))
		}
		iv := belief.Interval{Lo: pastLo, Hi: math.Min(1, pastLo+0.05)}
		if iv.Contains(f) {
			t.Fatalf("trial %d: Contains admits f=%v one ulp past Lo-ε", trial, f)
		}
		if glo, ghi := groupRange([]float64{f}, iv); glo <= ghi {
			t.Fatalf("trial %d: groupRange covers f=%v one ulp past Lo-ε", trial, f)
		}
	}
	if loSolved < 100 || hiSolved < 100 {
		t.Fatalf("exact-boundary solver hit too few cases: lo=%d hi=%d of 500", loSolved, hiSolved)
	}
}

// TestHasEdgeMatchesContainsExactLoEps extends the 200-random-table
// HasEdge==Contains agreement property with belief intervals whose lower
// bound is Nextafter-solved so an observed frequency sits exactly at Lo-ε
// at runtime — the boundary the random ±ε shifts of
// TestHasEdgeMatchesContains only approximate (the float rounding of
// f+ε-ε rarely returns to f).
func TestHasEdgeMatchesContainsExactLoEps(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	exact := 0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		m := 8 + rng.Intn(12)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = rng.Intn(m + 1)
		}
		ft, err := dataset.NewTable(m, counts)
		if err != nil {
			t.Fatal(err)
		}
		freqs := ft.Frequencies()
		ivs := make([]belief.Interval, n)
		for i := range ivs {
			f := freqs[rng.Intn(n)]
			if lo, ok := solveLoMinusEps(f); ok && lo <= 1 {
				exact++
				ivs[i] = belief.Interval{Lo: lo, Hi: math.Min(1, lo+rng.Float64()*0.3)}
			} else {
				a, b := rng.Float64(), rng.Float64()
				if a > b {
					a, b = b, a
				}
				ivs[i] = belief.Interval{Lo: a, Hi: b}
			}
		}
		bf := belief.MustNew(ivs)
		g := buildGraph(t, bf, ft)
		for x := 0; x < n; x++ {
			for w := 0; w < n; w++ {
				if got, want := g.HasEdge(w, x), bf.Contains(x, freqs[w]); got != want {
					t.Fatalf("trial %d: HasEdge(%d,%d)=%v but Contains(%d, %v)=%v (interval %v)",
						trial, w, x, got, x, freqs[w], want, bf.Interval(x))
				}
			}
		}
	}
	if exact < 200 {
		t.Fatalf("only %d exact Lo-ε intervals across 200 trials; solver too weak", exact)
	}
}
