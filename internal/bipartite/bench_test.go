package bipartite

import (
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/dataset"
)

func benchGraph(b *testing.B, n int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	m := 10 * n
	counts := make([]int, n)
	for i := range counts {
		counts[i] = rng.Intn(m + 1)
	}
	ft, err := dataset.NewTable(m, counts)
	if err != nil {
		b.Fatal(err)
	}
	gr := dataset.GroupItems(ft)
	bf := belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
	g, err := Build(bf, gr)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkBuildGraph10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	m := 10 * n
	counts := make([]int, n)
	for i := range counts {
		counts[i] = rng.Intn(m + 1)
	}
	ft, err := dataset.NewTable(m, counts)
	if err != nil {
		b.Fatal(err)
	}
	gr := dataset.GroupItems(ft)
	bf := belief.UniformWidth(ft.Frequencies(), gr.MedianGap())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(bf, gr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOutdegrees10k(b *testing.B) {
	g := benchGraph(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Outdegrees()
	}
}

func BenchmarkPropagate10k(b *testing.B) {
	g := benchGraph(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Propagate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerfectMatching10k(b *testing.B) {
	g := benchGraph(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.PerfectMatching(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountPerfectMatchings16(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	e := RandomExplicit(16, 0.5, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.CountPerfectMatchings(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHopcroftKarp1k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	e := RandomExplicit(1000, 0.01, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.MaximumMatching()
	}
}

func BenchmarkRasmussen(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	e := RandomExplicit(30, 0.5, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RasmussenEstimate(e, 100, rng)
	}
}
