package bipartite

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/budget"
)

// ErrInfeasible is returned when propagation proves that the graph admits no
// perfect matching (no consistent crack mapping exists).
var ErrInfeasible = errors.New("bipartite: no consistent perfect matching exists")

// ForcedPair records a propagation-forced assignment: in every perfect
// matching of the graph, anonymized item Anon′ maps to item Item.
type ForcedPair struct {
	Anon int // anonymized-item id (in original space)
	Item int // original-item id
}

// Propagation is the result of the degree-1 propagation of Figure 7.
type Propagation struct {
	Forced []ForcedPair // forced edges, in discovery order
	Outdeg []int        // post-propagation outdegree per item (forced items: 1)
	Rounds int          // fixed-point iterations used
}

// ForcedCracks counts forced pairs that are cracks, i.e. where the forced
// assignment reveals the item's true identity (Anon == Item).
func (p *Propagation) ForcedCracks() int {
	c := 0
	for _, fp := range p.Forced {
		if fp.Anon == fp.Item {
			c++
		}
	}
	return c
}

// Propagate runs the degree-1 propagation of Figure 7: whenever an item can
// be mapped to by exactly one remaining anonymized item — or an anonymized
// item has exactly one remaining candidate — that edge belongs to every
// perfect matching, so both endpoints are removed and degrees recomputed, to
// a fixed point. The paper notes the worst case takes v iterations (the
// cascade of Figure 6(a)) but that in practice a few rounds suffice.
//
// The graph itself is not modified. ErrInfeasible is reported when a degree
// reaches 0 or a group has fewer covering items than members — situations
// that can arise with α-compliant (partially wrong) belief functions.
func (g *Graph) Propagate() (*Propagation, error) {
	return g.PropagateCtx(context.Background())
}

// PropagateCtx is Propagate under a work budget: one operation per item (or
// group) examined per round, so the Figure 6(a) worst case — v rounds each
// touching v items — can be interrupted by a deadline or operation limit
// instead of running quadratically to completion.
func (g *Graph) PropagateCtx(ctx context.Context) (*Propagation, error) {
	n := g.Items()
	k := g.NumGroups()
	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return nil, err
	}

	sizeF := newFenwick(k)         // remaining anonymized items per group
	coverF := newRangeFenwick(k)   // active items covering each group
	coverIDF := newRangeFenwick(k) // sum of (x+1) over active covering items
	live := make([][]int, k)       // remaining anonymized ids per group
	for gi := 0; gi < k; gi++ {
		sizeF.Add(gi, g.GroupSize[gi])
		live[gi] = append([]int(nil), g.GroupItems[gi]...)
	}
	activeItems := 0
	active := make([]bool, n)
	for x := 0; x < n; x++ {
		lo, hi := g.ItemLo[x], g.ItemHi[x]
		if lo > hi {
			// The item has no consistent image; a perfect matching cannot
			// exist. (Only possible for non-compliant belief functions.)
			return nil, ErrInfeasible
		}
		active[x] = true
		activeItems++
		coverF.Add(lo, hi, 1)
		coverIDF.Add(lo, hi, x+1)
	}

	res := &Propagation{Outdeg: make([]int, n)}

	force := func(x, w, gi int) error {
		// Deactivate item x.
		lo, hi := g.ItemLo[x], g.ItemHi[x]
		active[x] = false
		activeItems--
		coverF.Add(lo, hi, -1)
		coverIDF.Add(lo, hi, -(x + 1))
		// Remove anonymized item w from group gi.
		lv := live[gi]
		for i, v := range lv {
			if v == w {
				lv[i] = lv[len(lv)-1]
				live[gi] = lv[:len(lv)-1]
				break
			}
		}
		sizeF.Add(gi, -1)
		res.Forced = append(res.Forced, ForcedPair{Anon: w, Item: x})
		res.Outdeg[x] = 1
		return nil
	}

	for activeItems > 0 {
		res.Rounds++
		changed := false
		// Item side: degree-1 items are forced to their unique candidate.
		for x := 0; x < n; x++ {
			if err := bud.Charge(1); err != nil {
				return nil, fmt.Errorf("bipartite: propagation: %w", err)
			}
			if !active[x] {
				continue
			}
			lo, hi := g.ItemLo[x], g.ItemHi[x]
			d := sizeF.RangeSum(lo, hi)
			if d == 0 {
				return nil, ErrInfeasible
			}
			if d == 1 {
				// Locate the unique remaining anonymized item in range.
				before := sizeF.PrefixSum(lo - 1)
				gi := sizeF.FindKth(before + 1)
				w := live[gi][0]
				if err := force(x, w, gi); err != nil {
					return nil, err
				}
				changed = true
			}
		}
		// Anonymized side: a group whose members have a single candidate.
		for gi := 0; gi < k; gi++ {
			if err := bud.Charge(1); err != nil {
				return nil, fmt.Errorf("bipartite: propagation: %w", err)
			}
			c := len(live[gi])
			if c == 0 {
				continue
			}
			cov := coverF.Get(gi)
			if cov < c {
				return nil, ErrInfeasible
			}
			if cov == 1 { // c == 1 because cov >= c
				x := coverIDF.Get(gi) - 1
				w := live[gi][0]
				if err := force(x, w, gi); err != nil {
					return nil, err
				}
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Residual outdegrees of the unforced items.
	for x := 0; x < n; x++ {
		if active[x] {
			res.Outdeg[x] = sizeF.RangeSum(g.ItemLo[x], g.ItemHi[x])
		}
	}
	return res, nil
}
