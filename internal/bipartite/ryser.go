package bipartite

import (
	"context"
	"fmt"
	"math/big"
	"math/bits"

	"repro/internal/budget"
)

// Gray-code Ryser permanent (DESIGN.md §16).
//
// Ryser's inclusion–exclusion formula writes the permanent of a 0/1
// biadjacency matrix as
//
//	perm(A) = Σ_{S ⊆ cols} (-1)^{n-|S|} Π_i r_i(S),   r_i(S) = |Adj[i] ∩ S|,
//
// and visiting the column subsets in Gray-code order changes exactly one
// column per step, so each row sum is maintained incrementally: flipping
// column j touches only the deg(j) rows adjacent to j. Amortized over the
// 2^n subsets that is O(2^n · n) WORD operations — machine adds and
// multiplies, not big-integer additions like the subset DP — and O(n)
// memory instead of the DP's O(2^n) table of big.Ints.
//
// All arithmetic stays in fixed-width words: row sums are at most n ≤ 30,
// so a term Π r_i(S) ≤ 30^30 < 2^148 fits in three 64-bit words, and the
// 2^30 terms of each sign sum to < 2^178, held in a four-word accumulator
// pair (one per sign). big.Int appears only once, at the boundary, when the
// positive and negative accumulators are subtracted into the exact result.

// ryserScratch holds the per-call working state of the Gray-code kernel, so
// a warm caller (the n+1 diagonal-minor passes of exact expected cracks, or
// a benchmark loop) runs the accumulator core without allocating.
type ryserScratch struct {
	colMask []uint64 // colMask[j] = bitmask over rows i with j ∈ Adj[i]
	rowSum  []int32  // r_i(S) for the current Gray-code subset S
}

// reset prepares the scratch for a graph of n rows, growing the backing
// arrays only when n exceeds every earlier use.
func (sc *ryserScratch) reset(n int) {
	if cap(sc.colMask) < n {
		sc.colMask = make([]uint64, n)
		sc.rowSum = make([]int32, n)
	}
	sc.colMask = sc.colMask[:n]
	sc.rowSum = sc.rowSum[:n]
	for i := range sc.colMask {
		sc.colMask[i] = 0
		sc.rowSum[i] = 0
	}
}

// ryserBlock is the number of Gray-code steps charged to the budget at
// once: the inner loop stays branch-lean and cancellation still lands
// within a few microseconds of the deadline.
const ryserBlock = 1 << 12

// countPerfectMatchingsRyser is the Gray-code Ryser kernel. bud may be nil
// for unbudgeted use; sc may be nil to allocate fresh scratch. Only the
// final conversion touches big.Int.
func (e *Explicit) countPerfectMatchingsRyser(bud *budget.Budget, sc *ryserScratch) (*big.Int, error) {
	if e.N == 0 {
		// Empty minor: the empty matching, exactly one.
		return big.NewInt(1), nil
	}
	if sc == nil {
		sc = &ryserScratch{}
	}
	diff, err := e.ryserWords(bud, sc)
	if err != nil {
		return nil, err
	}
	out := new(big.Int)
	tmp := new(big.Int)
	for k := 3; k >= 0; k-- {
		out.Lsh(out, 64)
		out.Or(out, tmp.SetUint64(diff[k]))
	}
	return out, nil
}

// ryserWords is the accumulator core: everything up to (and including) the
// signed subtraction runs in fixed-width words, so a warm scratch makes the
// whole pass allocation-free — the property ryser_test.go pins. The
// 256-bit little-endian result is the exact permanent.
func (e *Explicit) ryserWords(bud *budget.Budget, sc *ryserScratch) ([4]uint64, error) {
	n := e.N
	var zero [4]uint64
	if n > 63 {
		return zero, fmt.Errorf("bipartite: ryser permanent needs n <= 63, got %d", n)
	}
	sc.reset(n)
	for w, row := range e.Adj {
		if err := bud.Charge(int64(len(row) + 1)); err != nil {
			return zero, fmt.Errorf("bipartite: ryser permanent: %w", err)
		}
		for _, x := range row {
			sc.colMask[x] |= 1 << uint(w)
		}
	}
	rowSum := sc.rowSum
	colMask := sc.colMask

	var pos, neg [4]uint64
	zeros := n // rows with r_i(S) = 0; any such row kills the term
	size := 0  // |S|
	var cur uint64
	total := uint64(1) << uint(n)
	for start := uint64(1); start < total; {
		end := start + ryserBlock
		if end > total {
			end = total
		}
		if err := bud.Charge(int64(end - start)); err != nil {
			return zero, fmt.Errorf("bipartite: ryser permanent: %w", err)
		}
		for m := start; m < end; m++ {
			// Gray code: step m toggles column j = TrailingZeros64(m).
			j := bits.TrailingZeros64(m)
			bit := uint64(1) << uint(j)
			cur ^= bit
			if cur&bit != 0 {
				size++
				for mask := colMask[j]; mask != 0; mask &= mask - 1 {
					i := bits.TrailingZeros64(mask)
					if rowSum[i] == 0 {
						zeros--
					}
					rowSum[i]++
				}
			} else {
				size--
				for mask := colMask[j]; mask != 0; mask &= mask - 1 {
					i := bits.TrailingZeros64(mask)
					rowSum[i]--
					if rowSum[i] == 0 {
						zeros++
					}
				}
			}
			if zeros != 0 {
				continue // some r_i(S) = 0, the product vanishes
			}
			// Π r_i(S) in three words; r_i ≤ 30 keeps the top word's high
			// product and the final carry provably zero.
			p0 := uint64(rowSum[0])
			var p1, p2 uint64
			for i := 1; i < n; i++ {
				s := uint64(rowSum[i])
				hi0, lo0 := bits.Mul64(p0, s)
				hi1, lo1 := bits.Mul64(p1, s)
				_, lo2 := bits.Mul64(p2, s)
				var c uint64
				p0 = lo0
				p1, c = bits.Add64(lo1, hi0, 0)
				p2, _ = bits.Add64(lo2, hi1, c)
			}
			acc := &pos
			if (n-size)&1 != 0 {
				acc = &neg
			}
			var c uint64
			acc[0], c = bits.Add64(acc[0], p0, 0)
			acc[1], c = bits.Add64(acc[1], p1, c)
			acc[2], c = bits.Add64(acc[2], p2, c)
			acc[3], _ = bits.Add64(acc[3], 0, c)
		}
		start = end
	}

	// Boundary: perm = pos - neg, exactly, and the permanent of a 0/1
	// matrix is non-negative, so the four-word subtraction cannot borrow.
	var diff [4]uint64
	var borrow uint64
	diff[0], borrow = bits.Sub64(pos[0], neg[0], 0)
	diff[1], borrow = bits.Sub64(pos[1], neg[1], borrow)
	diff[2], borrow = bits.Sub64(pos[2], neg[2], borrow)
	diff[3], borrow = bits.Sub64(pos[3], neg[3], borrow)
	if borrow != 0 {
		return zero, fmt.Errorf("bipartite: ryser accumulator underflow (n=%d)", n)
	}
	return diff, nil
}

// DiagonalMatchingCounts returns perm(A) and, for each item x whose
// diagonal edge (x′, x) exists, perm(minor(x, x)) — the numerators of the
// exact expected-crack sum of Section 4.1. Entries for absent diagonal
// edges are nil.
func (e *Explicit) DiagonalMatchingCounts() (total *big.Int, diag []*big.Int, err error) {
	return e.DiagonalMatchingCountsCtx(context.Background())
}

// DiagonalMatchingCountsCtx is DiagonalMatchingCounts under a work budget.
// The n+1 Gray-code Ryser passes share one budget (and one scratch), so an
// operation limit bounds the whole computation, and the O(n) memory — no
// 2^n DP table — is what lets the exact tier reach n = MaxExactN.
// ErrInfeasible is returned when the graph has no perfect matching.
func (e *Explicit) DiagonalMatchingCountsCtx(ctx context.Context) (total *big.Int, diag []*big.Int, err error) {
	if e.N > MaxExactN {
		return nil, nil, fmt.Errorf("bipartite: exact count needs n <= %d, got %d", MaxExactN, e.N)
	}
	bud := budget.New(ctx, budget.Config{})
	if err := bud.Check(); err != nil {
		return nil, nil, err
	}
	sc := &ryserScratch{}
	total, err = e.countPerfectMatchingsRyser(bud, sc)
	if err != nil {
		return nil, nil, err
	}
	if total.Sign() == 0 {
		return nil, nil, ErrInfeasible
	}
	diag = make([]*big.Int, e.N)
	for x := 0; x < e.N; x++ {
		if !e.HasEdge(x, x) {
			continue
		}
		diag[x], err = e.Minor(x, x).countPerfectMatchingsRyser(bud, sc)
		if err != nil {
			return nil, nil, err
		}
	}
	return total, diag, nil
}
