// Package budget bounds the cost of the repo's expensive computations.
//
// The paper's direct method (Section 4.1) is #P-complete, and several other
// paths — matching enumeration, MCMC simulation, the α binary search — can
// run for a long time on adversarial or merely large inputs. A production
// risk assessor must degrade gracefully instead of hanging, so every hot
// entry point accepts a context and charges its work against a Budget:
//
//   - a wall-clock deadline carried by the context (context.WithTimeout),
//   - an optional operation-count limit (WithMaxOps or Config.MaxOps),
//   - a CheckEvery interval so the context is polled only once per batch of
//     cheap operations, keeping the overhead negligible on hot loops.
//
// Exhaustion surfaces as a typed error so callers can tell "ran out of
// budget, fall back to a cheaper estimator" (ErrBudgetExceeded, which also
// covers context.DeadlineExceeded) apart from "the caller explicitly gave
// up" (ErrCanceled, from context.Canceled), which aborts the whole cascade.
package budget

import (
	"context"
	"errors"
	"fmt"
)

// ErrBudgetExceeded reports that a computation ran out of its work budget —
// either the operation-count limit or the wall-clock deadline. Callers that
// implement graceful degradation treat it as "try a cheaper method".
var ErrBudgetExceeded = errors.New("work budget exceeded")

// ErrCanceled reports that the caller canceled the context. Unlike
// ErrBudgetExceeded it is not a cue to degrade: the caller wants out.
var ErrCanceled = errors.New("canceled")

// DefaultCheckEvery is the number of charged operations between context
// polls when Config.CheckEvery is zero. Polling a context costs an atomic
// load and a channel check; once per 1024 operations is invisible even on
// loops whose operations are single float additions.
const DefaultCheckEvery = 1024

type maxOpsKey struct{}

// WithMaxOps returns a context carrying a default operation limit for every
// Budget created under it. CLI binaries use it to wire a -max-work flag
// through call chains without widening signatures. The limit bounds each
// budgeted computation individually, not their aggregate.
func WithMaxOps(ctx context.Context, maxOps int64) context.Context {
	if maxOps <= 0 {
		return ctx
	}
	return context.WithValue(ctx, maxOpsKey{}, maxOps)
}

// MaxOps returns the operation limit carried by the context, or 0 when none
// was set.
func MaxOps(ctx context.Context) int64 {
	if v, ok := ctx.Value(maxOpsKey{}).(int64); ok {
		return v
	}
	return 0
}

// Config tunes a Budget.
type Config struct {
	// MaxOps is the operation-count limit; 0 inherits the limit carried by
	// the context (WithMaxOps), which itself defaults to unlimited.
	MaxOps int64
	// CheckEvery is the number of charged operations between context polls;
	// 0 means DefaultCheckEvery.
	CheckEvery int64
}

// Budget tracks the work performed by one computation against a wall-clock
// deadline (via its context) and an optional operation-count limit. The zero
// of cost accounting is up to the caller: one "operation" should be one
// iteration of the loop being bounded, whatever that costs.
//
// A nil *Budget is valid and charges nothing, so optional budgeting threads
// through internal helpers without branching. A Budget is not safe for
// concurrent use; parallel workers each derive their own from the shared
// context.
type Budget struct {
	ctx        context.Context
	maxOps     int64
	checkEvery int64
	ops        int64
	pending    int64
	err        error
}

// New creates a Budget charging against ctx. See Config for the limits.
func New(ctx context.Context, cfg Config) *Budget {
	if cfg.MaxOps <= 0 {
		cfg.MaxOps = MaxOps(ctx)
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = DefaultCheckEvery
	}
	return &Budget{ctx: ctx, maxOps: cfg.MaxOps, checkEvery: cfg.CheckEvery}
}

// Charge records n operations and, once per CheckEvery charged operations,
// polls the context and the operation limit. The error is sticky: once the
// budget is exhausted every further Charge returns the same error, so hot
// loops need no separate "am I dead" flag.
func (b *Budget) Charge(n int64) error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.ops += n
	b.pending += n
	if b.pending < b.checkEvery {
		return nil
	}
	b.pending = 0
	return b.Check()
}

// Check polls the context and the operation limit immediately, regardless of
// the CheckEvery window. Call it before starting a computation so an
// already-expired budget fails before any allocation.
func (b *Budget) Check() error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	if err := b.ctx.Err(); err != nil {
		b.err = WrapContextErr(err)
		return b.err
	}
	if b.maxOps > 0 && b.ops > b.maxOps {
		b.err = fmt.Errorf("%w: %d operations (limit %d)", ErrBudgetExceeded, b.ops, b.maxOps)
		return b.err
	}
	return nil
}

// Ops returns the number of operations charged so far.
func (b *Budget) Ops() int64 {
	if b == nil {
		return 0
	}
	return b.ops
}

// Err returns the sticky exhaustion error, or nil while the budget holds.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	return b.err
}

// WrapContextErr converts a non-nil context error into the package's typed
// errors: DeadlineExceeded becomes ErrBudgetExceeded (the wall-clock budget
// ran out — degrade), Canceled becomes ErrCanceled (the caller gave up —
// abort). Both wrappings keep errors.Is against the original context error
// working.
func WrapContextErr(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w (%w)", ErrBudgetExceeded, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w (%w)", ErrCanceled, err)
	default:
		return err
	}
}

// Degradable reports whether err means "ran out of budget" — the cue for a
// degradation cascade to fall back to a cheaper method. Explicit
// cancellation is NOT degradable: the caller wants the whole computation
// abandoned.
func Degradable(err error) bool {
	return errors.Is(err, ErrBudgetExceeded)
}

// IsBudgetError reports whether err is either typed budget error.
func IsBudgetError(err error) bool {
	return errors.Is(err, ErrBudgetExceeded) || errors.Is(err, ErrCanceled)
}

// ExitCodeBudget is the process exit status the cmd/ binaries use for budget
// exhaustion or cancellation, distinct from 1 (generic error) and from
// domain-specific statuses like anonrisk's 3 (withhold verdict).
const ExitCodeBudget = 4

// ExitCode maps an error to the cmd/ exit-code convention: 0 for nil, 4 for
// budget exhaustion or cancellation, 1 otherwise.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case IsBudgetError(err):
		return ExitCodeBudget
	default:
		return 1
	}
}

// Run executes f, returning early with a typed budget error when the context
// expires first. It exists so CLI binaries can bound code paths that are not
// context-aware (mining, data generation): f keeps running on its goroutine
// after an early return, which is acceptable only when the process is about
// to exit. Context-aware code should thread a Budget instead.
func Run(ctx context.Context, f func() error) error {
	if err := ctx.Err(); err != nil {
		return WrapContextErr(err)
	}
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return WrapContextErr(ctx.Err())
	}
}
