package budget

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestSharedInheritsContextMaxOps(t *testing.T) {
	ctx := WithMaxOps(context.Background(), 100)
	s := NewShared(ctx, Config{CheckEvery: 1})
	w := s.Worker()
	var err error
	for i := 0; i < 200 && err == nil; i++ {
		err = w.Charge(1)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded from the inherited limit", err)
	}
}

func TestSharedUnlimited(t *testing.T) {
	s := NewShared(context.Background(), Config{CheckEvery: 1})
	w := s.Worker()
	for i := 0; i < 10000; i++ {
		if err := w.Charge(1); err != nil {
			t.Fatalf("unlimited budget failed: %v", err)
		}
	}
}

func TestWorkerBatchesCharges(t *testing.T) {
	s := NewShared(context.Background(), Config{MaxOps: 1 << 30, CheckEvery: 100})
	w := s.Worker()
	for i := 0; i < 99; i++ {
		if err := w.Charge(1); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Ops(); got != 0 {
		t.Errorf("ops flushed early: %d, want 0 before the batch fills", got)
	}
	if err := w.Charge(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Ops(); got != 100 {
		t.Errorf("ops = %d after batch flush, want 100", got)
	}
	// Check flushes the partial batch immediately.
	if err := w.Charge(7); err != nil {
		t.Fatal(err)
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	if got := s.Ops(); got != 107 {
		t.Errorf("ops = %d after Check, want 107", got)
	}
}

func TestSharedExhaustionIsStickyAcrossViews(t *testing.T) {
	s := NewShared(context.Background(), Config{MaxOps: 10, CheckEvery: 1})
	w1 := s.Worker()
	var err error
	for i := 0; i < 20 && err == nil; i++ {
		err = w1.Charge(1)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("w1 err = %v", err)
	}
	// A fresh view must see the exhaustion on its first charge (the early-out
	// path), without contributing further operations.
	w2 := s.Worker()
	if err := w2.Charge(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("w2 first Charge = %v, want sticky ErrBudgetExceeded", err)
	}
	if err := s.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("Shared.Err = %v", err)
	}
	if err := s.Check(); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("Shared.Check = %v", err)
	}
}

func TestSharedConcurrentCharging(t *testing.T) {
	// Many goroutines hammering one limit: the total flushed must never
	// wildly exceed MaxOps + workers×CheckEvery, and every worker must
	// eventually observe the exhaustion.
	const workers, checkEvery = 8, 16
	s := NewShared(context.Background(), Config{MaxOps: 10000, CheckEvery: checkEvery})
	var wg sync.WaitGroup
	errsSeen := make([]error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := s.Worker()
			for {
				if err := w.Charge(1); err != nil {
					errsSeen[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errsSeen {
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Errorf("worker %d err = %v", g, err)
		}
	}
	if got, limit := s.Ops(), int64(10000+workers*checkEvery); got > limit {
		t.Errorf("flushed %d operations, want <= %d (MaxOps + batch slack)", got, limit)
	}
}

func TestSharedCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewShared(ctx, Config{CheckEvery: 1})
	err := s.Worker().Charge(1)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if Degradable(err) {
		t.Error("cancellation must not be degradable")
	}
}

func TestSharedBudgetExceededIsDegradable(t *testing.T) {
	s := NewShared(context.Background(), Config{MaxOps: 1, CheckEvery: 1})
	w := s.Worker()
	w.Charge(1)
	err := w.Charge(1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v", err)
	}
	if !Degradable(err) {
		t.Error("shared exhaustion must stay degradable for the cascade")
	}
}
