package budget

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 10_000; i++ {
		if err := b.Charge(1); err != nil {
			t.Fatalf("nil budget charged: %v", err)
		}
	}
	if b.Ops() != 0 || b.Err() != nil {
		t.Errorf("nil budget reports ops=%d err=%v", b.Ops(), b.Err())
	}
	if err := b.Check(); err != nil {
		t.Errorf("nil budget check: %v", err)
	}
}

func TestMaxOpsExhaustion(t *testing.T) {
	b := New(context.Background(), Config{MaxOps: 100, CheckEvery: 10})
	var err error
	charged := int64(0)
	for err == nil {
		err = b.Charge(1)
		charged++
		if charged > 1000 {
			t.Fatal("budget never exhausted")
		}
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	// Exhaustion is noticed within one CheckEvery window of the limit.
	if charged < 100 || charged > 110 {
		t.Errorf("exhausted after %d ops, want within one window of 100", charged)
	}
	// Sticky.
	if err2 := b.Charge(1); err2 != err {
		t.Errorf("sticky error lost: %v vs %v", err2, err)
	}
}

func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := New(ctx, Config{CheckEvery: 8})
	if err := b.Check(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Check = %v, want ErrCanceled", err)
	}
	if !errors.Is(b.Err(), context.Canceled) {
		t.Errorf("cause lost: %v", b.Err())
	}
}

func TestDeadlineBecomesBudgetExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	b := New(ctx, Config{})
	err := b.Check()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("deadline err = %v, want ErrBudgetExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cause lost: %v", err)
	}
	if !Degradable(err) {
		t.Error("deadline exhaustion must be degradable")
	}
}

func TestCanceledNotDegradable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := New(ctx, Config{}).Check()
	if Degradable(err) {
		t.Error("cancellation must not be degradable")
	}
	if !IsBudgetError(err) {
		t.Error("cancellation is still a budget error for exit codes")
	}
}

func TestChargeChecksWithinWindow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx, Config{CheckEvery: 64})
	cancel()
	var err error
	n := 0
	for err == nil && n < 1000 {
		err = b.Charge(1)
		n++
	}
	if err == nil {
		t.Fatal("cancellation never noticed")
	}
	if n > 64 {
		t.Errorf("noticed after %d charges, want within one 64-op window", n)
	}
}

func TestWithMaxOpsFlowsIntoNew(t *testing.T) {
	ctx := WithMaxOps(context.Background(), 42)
	if got := MaxOps(ctx); got != 42 {
		t.Fatalf("MaxOps = %d", got)
	}
	b := New(ctx, Config{CheckEvery: 1})
	if err := b.Charge(43); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("context-carried limit ignored: %v", err)
	}
	// Explicit config wins over the context.
	b2 := New(ctx, Config{MaxOps: 1000, CheckEvery: 1})
	if err := b2.Charge(100); err != nil {
		t.Errorf("explicit MaxOps overridden: %v", err)
	}
	// Non-positive limits don't annotate the context.
	if got := MaxOps(WithMaxOps(context.Background(), 0)); got != 0 {
		t.Errorf("zero limit stored: %d", got)
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{ErrBudgetExceeded, 4},
		{ErrCanceled, 4},
		{fmt.Errorf("wrapped: %w", ErrBudgetExceeded), 4},
		{errors.New("boom"), 1},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestRun(t *testing.T) {
	if err := Run(context.Background(), func() error { return nil }); err != nil {
		t.Fatalf("Run ok path: %v", err)
	}
	want := errors.New("inner")
	if err := Run(context.Background(), func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("Run error path: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Run(ctx, func() error { return nil }); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run pre-canceled: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	block := make(chan struct{})
	defer close(block)
	start := time.Now()
	err := Run(ctx2, func() error { <-block; return nil })
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Run timeout: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("Run did not return promptly on timeout")
	}
}
