package budget

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Charger is the budget-charging surface shared by the single-goroutine
// Budget and the worker views of a Shared budget, so hot loops (the MCMC
// sampler, the O-estimate sum) can be charged identically whether they run
// serially or inside a worker pool.
type Charger interface {
	// Charge records n operations; once per CheckEvery charged operations it
	// polls the deadline and the operation limit. The error is sticky.
	Charge(n int64) error
	// Check polls immediately, regardless of the CheckEvery window.
	Check() error
}

var (
	_ Charger = (*Budget)(nil)
	_ Charger = (*Worker)(nil)
)

// Shared is a work budget charged atomically by a pool of parallel workers:
// one operation limit and one deadline bound the *sum* of the workers' work,
// exactly like the serial computation they replace. (A plain Budget is
// single-goroutine; giving each worker its own would multiply the caller's
// limit by the worker count.)
//
// Workers do not charge the shared counter directly — each holds a Worker
// view that batches charges locally and flushes once per CheckEvery
// operations, so the atomic is touched a few times per million operations
// instead of once per operation.
//
// Exhaustion is sticky and global: the first worker to observe it stores the
// typed error and every later Charge/Check on any view returns it, so the
// whole fan-out winds down at its next budget check.
type Shared struct {
	ctx        context.Context
	maxOps     int64
	checkEvery int64
	ops        atomic.Int64
	failed     atomic.Bool
	mu         sync.Mutex
	err        error
}

// NewShared creates a budget for a parallel fan-out under ctx. See Config
// for the limits; MaxOps zero inherits the context's WithMaxOps value.
func NewShared(ctx context.Context, cfg Config) *Shared {
	if cfg.MaxOps <= 0 {
		cfg.MaxOps = MaxOps(ctx)
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = DefaultCheckEvery
	}
	return &Shared{ctx: ctx, maxOps: cfg.MaxOps, checkEvery: cfg.CheckEvery}
}

// Worker returns a fresh single-goroutine view of the shared budget. Each
// pool worker (or each work item) takes its own; views must not be shared
// across goroutines.
func (s *Shared) Worker() *Worker { return &Worker{s: s} }

// Ops returns the operations flushed to the shared counter so far. Workers'
// unflushed local batches (< CheckEvery each) are not included.
func (s *Shared) Ops() int64 { return s.ops.Load() }

// Err returns the sticky exhaustion error, or nil while the budget holds.
func (s *Shared) Err() error {
	if !s.failed.Load() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Check polls the context and the operation limit immediately.
func (s *Shared) Check() error {
	return s.check(0)
}

// check flushes n pending operations and polls. It is safe for concurrent
// use; the sticky error is written once under the mutex.
func (s *Shared) check(n int64) error {
	if s.failed.Load() {
		return s.Err()
	}
	total := s.ops.Add(n)
	var err error
	switch {
	case s.ctx.Err() != nil:
		err = WrapContextErr(s.ctx.Err())
	case s.maxOps > 0 && total > s.maxOps:
		err = fmt.Errorf("%w: %d operations (limit %d)", ErrBudgetExceeded, total, s.maxOps)
	default:
		return nil
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	err = s.err
	s.mu.Unlock()
	s.failed.Store(true)
	return err
}

// Worker is one goroutine's view of a Shared budget. It satisfies Charger
// with the same batching contract as Budget: context and limit are polled
// once per CheckEvery charged operations.
type Worker struct {
	s       *Shared
	pending int64
}

// Charge records n operations against the shared budget.
func (w *Worker) Charge(n int64) error {
	w.pending += n
	if w.pending < w.s.checkEvery {
		// Cheap early-out so a fan-out stops promptly once any sibling
		// exhausted the budget, without waiting out the local batch.
		if w.s.failed.Load() {
			return w.s.Err()
		}
		return nil
	}
	n, w.pending = w.pending, 0
	return w.s.check(n)
}

// Check flushes the local batch and polls the shared budget immediately.
func (w *Worker) Check() error {
	n := w.pending
	w.pending = 0
	return w.s.check(n)
}
