package relation

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// paperSchema is the Section 8.1 example: age, ethnicity, car-model.
func paperSchema() Schema {
	return Schema{Attrs: []Attribute{
		{Name: "age", Values: []string{"20-25", "25-30", "30-35", "35-40"}, Ordered: true},
		{Name: "ethnicity", Values: []string{"Chinese", "Indian", "German"}},
		{Name: "car", Values: []string{"Toyota", "Honda", "BMW"}},
	}}
}

// paperExample builds a small population containing John, Mary and Bob.
func paperExample(t testing.TB) *Relation {
	t.Helper()
	s := paperSchema()
	rows := [][]int{
		{0, 0, 0}, // John: 20-25, Chinese, Toyota
		{2, 1, 1}, // Mary: 30-35, Indian, Honda
		{3, 2, 2}, // Bob: 35-40, German, BMW
		{1, 0, 0}, // another Chinese Toyota owner
		{2, 2, 0}, // 30-35, German, Toyota
		{0, 1, 2}, // 20-25, Indian, BMW
	}
	r, err := New(s, []string{"John", "Mary", "Bob", "p3", "p4", "p5"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	s := paperSchema()
	if _, err := New(Schema{}, nil, [][]int{{0}}); err == nil {
		t.Error("empty schema: want error")
	}
	if _, err := New(s, nil, nil); err == nil {
		t.Error("no records: want error")
	}
	if _, err := New(s, []string{"a"}, [][]int{{0, 0, 0}, {1, 1, 1}}); err == nil {
		t.Error("name count mismatch: want error")
	}
	if _, err := New(s, nil, [][]int{{0, 0}}); err == nil {
		t.Error("short row: want error")
	}
	if _, err := New(s, nil, [][]int{{0, 0, 9}}); err == nil {
		t.Error("out-of-range value: want error")
	}
}

func TestSchemaLookups(t *testing.T) {
	s := paperSchema()
	if s.AttrIndex("car") != 2 || s.AttrIndex("nope") != -1 {
		t.Error("AttrIndex wrong")
	}
	ai, vi, err := s.ValueIndex("ethnicity", "Indian")
	if err != nil || ai != 1 || vi != 1 {
		t.Errorf("ValueIndex = (%d,%d,%v)", ai, vi, err)
	}
	if _, _, err := s.ValueIndex("nope", "x"); err == nil {
		t.Error("unknown attribute: want error")
	}
	if _, _, err := s.ValueIndex("car", "Lada"); err == nil {
		t.Error("unknown value: want error")
	}
}

func TestTupleGroupsAndFullKnowledge(t *testing.T) {
	r := paperExample(t)
	groups := r.TupleGroups()
	if len(groups) != 6 {
		t.Fatalf("groups = %d, want 6 (all tuples distinct)", len(groups))
	}
	if r.ExpectedCracksFullKnowledge() != 6 {
		t.Errorf("full knowledge E(X) = %v, want 6", r.ExpectedCracksFullKnowledge())
	}
	if r.MinAnonymitySet() != 1 {
		t.Errorf("min anonymity set = %d, want 1", r.MinAnonymitySet())
	}
	// Duplicate tuples merge.
	s := paperSchema()
	r2, err := New(s, nil, [][]int{{0, 0, 0}, {0, 0, 0}, {1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.TupleGroups()) != 2 || r2.MinAnonymitySet() != 1 {
		t.Errorf("dup groups = %d, k = %d", len(r2.TupleGroups()), r2.MinAnonymitySet())
	}
}

func TestKnowledgeConstraints(t *testing.T) {
	s := paperSchema()
	r := paperExample(t)

	john := NewKnowledge(s)
	if err := john.Exact(s, "ethnicity", "Chinese"); err != nil {
		t.Fatal(err)
	}
	if err := john.Exact(s, "car", "Toyota"); err != nil {
		t.Fatal(err)
	}
	if !john.Compliant(r, 0) {
		t.Error("John's knowledge should admit John's record")
	}
	if john.Compliant(r, 1) {
		t.Error("John's knowledge should exclude Mary's record")
	}

	mary := NewKnowledge(s)
	if err := mary.Range(s, "age", "30-35", "35-40"); err != nil {
		t.Fatal(err)
	}
	if !mary.Compliant(r, 1) || mary.Compliant(r, 0) {
		t.Error("Mary's age range should admit Mary, exclude John")
	}

	if err := mary.Range(s, "ethnicity", "Chinese", "Indian"); err == nil {
		t.Error("Range on unordered attribute: want error")
	}
	k := NewKnowledge(s)
	if err := k.OneOf(s, "car", "Toyota", "Honda"); err != nil {
		t.Fatal(err)
	}
	if !k.Compliant(r, 0) || k.Compliant(r, 2) {
		t.Error("OneOf admits wrong records")
	}
	if err := k.OneOf(s, "car"); err == nil {
		t.Error("empty OneOf: want error")
	}
	if err := k.Exact(s, "nope", "x"); err == nil {
		t.Error("Exact on unknown attribute: want error")
	}
}

func TestBuildGraphPaperExample(t *testing.T) {
	s := paperSchema()
	r := paperExample(t)
	john := NewKnowledge(s)
	_ = john.Exact(s, "ethnicity", "Chinese")
	_ = john.Exact(s, "car", "Toyota")
	mary := NewKnowledge(s)
	_ = mary.Range(s, "age", "30-35", "35-40")
	info := PartialInfo{0: john, 1: mary} // Bob (2) and the rest: no info

	g := BuildGraph(r, info)
	// John's column: only the two Chinese+Toyota records (0 and 3).
	for w := 0; w < 6; w++ {
		want := w == 0 || w == 3
		if got := g.HasEdge(w, 0); got != want {
			t.Errorf("edge (%d, John) = %v, want %v", w, got, want)
		}
	}
	// Mary's column: the three records with age in 30-40 (1, 2, 4).
	for w := 0; w < 6; w++ {
		want := w == 1 || w == 2 || w == 4
		if got := g.HasEdge(w, 1); got != want {
			t.Errorf("edge (%d, Mary) = %v, want %v", w, got, want)
		}
	}
	// Bob's column: everything.
	for w := 0; w < 6; w++ {
		if !g.HasEdge(w, 2) {
			t.Errorf("edge (%d, Bob) missing", w)
		}
	}
}

func TestAssessDisclosurePaperExample(t *testing.T) {
	s := paperSchema()
	r := paperExample(t)
	john := NewKnowledge(s)
	_ = john.Exact(s, "ethnicity", "Chinese")
	_ = john.Exact(s, "car", "Toyota")
	mary := NewKnowledge(s)
	_ = mary.Range(s, "age", "30-35", "35-40")
	info := PartialInfo{0: john, 1: mary}

	rep, err := AssessDisclosure(r, info, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Infeasible {
		t.Fatal("example should be feasible")
	}
	if !rep.HasExact {
		t.Fatal("exact expectation requested but missing")
	}
	// Validate the O-estimate against the exact value within a loose band,
	// and both against first principles: John is one of two candidates.
	if rep.OEstimate < 0.5 || rep.OEstimate > float64(r.Records()) {
		t.Errorf("OEstimate = %v out of sane range", rep.OEstimate)
	}
	if math.Abs(rep.OEstimate-rep.Exact) > 1.0 {
		t.Errorf("OEstimate %v far from exact %v", rep.OEstimate, rep.Exact)
	}
	// With no information at all, Lemma 1: exactly 1 crack expected.
	none, err := AssessDisclosure(r, PartialInfo{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(none.Exact-1) > 1e-9 {
		t.Errorf("ignorant exact = %v, want 1 (Lemma 1)", none.Exact)
	}
	if math.Abs(none.OEstimate-1) > 1e-9 {
		t.Errorf("ignorant OE = %v, want 1", none.OEstimate)
	}
}

func TestAssessDisclosureInfeasibleKnowledge(t *testing.T) {
	s := paperSchema()
	r := paperExample(t)
	wrong := NewKnowledge(s)
	// Claim John drives a BMW and is German: no record is Chinese+Toyota...
	// actually records 2 and 5 are BMWs; but claim an empty combination:
	_ = wrong.Exact(s, "ethnicity", "Chinese")
	_ = wrong.Exact(s, "car", "BMW")
	info := PartialInfo{0: wrong}
	rep, err := AssessDisclosure(r, info, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Infeasible {
		t.Error("empty candidate set should be infeasible")
	}
	if rep.OEstimate != 0 && !math.IsNaN(rep.OEstimate) {
		// John cannot be cracked; others contribute 1/n each at most.
		if rep.OEstimate > float64(r.Records()) {
			t.Errorf("fallback OE = %v out of range", rep.OEstimate)
		}
	}
}

func TestExplicitOEstimateAgainstCompactOnRelations(t *testing.T) {
	// Cross-check the explicit-graph O-estimate against exact values on
	// random populations with random exact-knowledge subsets.
	rng := rand.New(rand.NewSource(9))
	s := paperSchema()
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(6)
		r, err := RandomRelation(s, n, rng)
		if err != nil {
			t.Fatal(err)
		}
		info := PartialInfo{}
		for x := 0; x < n; x++ {
			if rng.Intn(2) == 0 {
				k := NewKnowledge(s)
				attr := s.Attrs[rng.Intn(len(s.Attrs))]
				// Truthful exact knowledge about one attribute.
				v := attr.Values[r.Value(x, s.AttrIndex(attr.Name))]
				if err := k.Exact(s, attr.Name, v); err != nil {
					t.Fatal(err)
				}
				info[x] = k
			}
		}
		g := BuildGraph(r, info)
		oe, err := core.OEstimateExplicit(g, core.OEOptions{Propagate: true})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := core.ExactExpectedCracks(g)
		if err != nil {
			t.Fatal(err)
		}
		if oe.Value < exact-2 || oe.Value > exact+2 {
			t.Errorf("trial %d: OE %v vs exact %v drifted", trial, oe.Value, exact)
		}
	}
}

func TestRandomRelationShape(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	r, err := RandomRelation(paperSchema(), 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.Records() != 50 || len(r.Names) != 50 {
		t.Fatalf("shape %d/%d", r.Records(), len(r.Names))
	}
	for i := 0; i < 50; i++ {
		for a := range r.Schema.Attrs {
			v := r.Value(i, a)
			if v < 0 || v >= len(r.Schema.Attrs[a].Values) {
				t.Fatalf("record %d attr %d value %d out of range", i, a, v)
			}
		}
	}
}
