// Package relation carries the paper's analysis beyond frequent sets, as
// Section 8.1 sketches: an anonymized *relation* — say (age, ethnicity,
// car-model) records whose identifying names were replaced by integers — and
// a hacker holding partial knowledge about certain individuals ("John is
// Chinese owning a Toyota", "Mary's age is between 30 and 35", nothing about
// Bob). The knowledge induces a bipartite graph between anonymized records
// and individuals, and every item-level result of the paper re-applies to it
// verbatim: Lemma 1 for unknown individuals, Lemma 3 over attribute-tuple
// equivalence classes (the anonymity sets of the k-anonymity literature), and
// the O-estimate with propagation for everything in between.
package relation

import (
	"fmt"
	"sort"
)

// Attribute is a categorical attribute with a fixed value vocabulary. Values
// are referenced by dense index; Ordered marks attributes (like age bands)
// on which range constraints make sense.
type Attribute struct {
	Name    string
	Values  []string
	Ordered bool
}

// Schema is an ordered list of attributes.
type Schema struct {
	Attrs []Attribute
}

// AttrIndex returns the index of the named attribute, or -1.
func (s Schema) AttrIndex(name string) int {
	for i, a := range s.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// ValueIndex returns the index of the value within the named attribute, or
// an error when either is unknown.
func (s Schema) ValueIndex(attr, value string) (int, int, error) {
	ai := s.AttrIndex(attr)
	if ai < 0 {
		return 0, 0, fmt.Errorf("relation: unknown attribute %q", attr)
	}
	for vi, v := range s.Attrs[ai].Values {
		if v == value {
			return ai, vi, nil
		}
	}
	return 0, 0, fmt.Errorf("relation: attribute %q has no value %q", attr, value)
}

// Relation is a table of records over a schema. Record i belongs to
// individual i of the original domain; the anonymized release shows the
// attribute values with the individual's identity replaced, so — exactly as
// in the transaction setting — the analysis can identify "anonymized record
// i′" with the individual i it hides.
type Relation struct {
	Schema Schema
	Names  []string // individual names, len n (documentation only)
	rows   [][]int  // rows[i][a] = value index of attribute a for individual i
}

// New validates and builds a relation. rows are copied.
//
//lint:allow ctxbudget one linear validation-and-copy pass over the input table
func New(schema Schema, names []string, rows [][]int) (*Relation, error) {
	if len(schema.Attrs) == 0 {
		return nil, fmt.Errorf("relation: empty schema")
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("relation: no records")
	}
	if names != nil && len(names) != len(rows) {
		return nil, fmt.Errorf("relation: %d names for %d records", len(names), len(rows))
	}
	r := &Relation{Schema: schema, Names: append([]string(nil), names...), rows: make([][]int, len(rows))}
	for i, row := range rows {
		if len(row) != len(schema.Attrs) {
			return nil, fmt.Errorf("relation: record %d has %d values, want %d", i, len(row), len(schema.Attrs))
		}
		for a, v := range row {
			if v < 0 || v >= len(schema.Attrs[a].Values) {
				return nil, fmt.Errorf("relation: record %d: value %d out of range for %q", i, v, schema.Attrs[a].Name)
			}
		}
		r.rows[i] = append([]int(nil), row...)
	}
	return r, nil
}

// Records returns the number of records n.
func (r *Relation) Records() int { return len(r.rows) }

// Value returns record i's value index for attribute a.
func (r *Relation) Value(i, a int) int { return r.rows[i][a] }

// TupleGroups partitions the records by their full attribute tuple — the
// anonymity sets. Groups are returned as slices of record ids, in a
// deterministic order.
func (r *Relation) TupleGroups() [][]int {
	byTuple := map[string][]int{}
	var keys []string
	for i, row := range r.rows {
		k := tupleKey(row)
		if _, ok := byTuple[k]; !ok {
			keys = append(keys, k)
		}
		byTuple[k] = append(byTuple[k], i)
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(byTuple))
	for _, k := range keys {
		out = append(out, byTuple[k])
	}
	return out
}

func tupleKey(row []int) string {
	b := make([]byte, 0, len(row)*4)
	for _, v := range row {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), 0xff)
	}
	return string(b)
}

// ExpectedCracksFullKnowledge is Lemma 3 transported to relations: a hacker
// who knows every individual's full attribute tuple cracks, in expectation,
// one individual per anonymity set.
func (r *Relation) ExpectedCracksFullKnowledge() float64 {
	return float64(len(r.TupleGroups()))
}

// MinAnonymitySet returns the size of the smallest anonymity set — the k of
// k-anonymity that the release satisfies as-is.
func (r *Relation) MinAnonymitySet() int {
	min := r.Records()
	for _, g := range r.TupleGroups() {
		if len(g) < min {
			min = len(g)
		}
	}
	return min
}
