package relation

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bipartite"
	"repro/internal/budget"
	"repro/internal/core"
)

// Knowledge is a hacker's partial information about one individual: for each
// attribute, the set of values the hacker considers possible (nil = no idea).
// It generalizes the belief-interval idea of the transaction setting from
// frequencies to attribute values.
type Knowledge struct {
	allowed []map[int]bool // per attribute; nil entry = unconstrained
}

// NewKnowledge returns an unconstrained ("Bob") knowledge record for a
// schema.
func NewKnowledge(s Schema) *Knowledge {
	return &Knowledge{allowed: make([]map[int]bool, len(s.Attrs))}
}

// Exact constrains the named attribute to exactly one value ("John is
// Chinese").
func (k *Knowledge) Exact(s Schema, attr, value string) error {
	ai, vi, err := s.ValueIndex(attr, value)
	if err != nil {
		return err
	}
	k.allowed[ai] = map[int]bool{vi: true}
	return nil
}

// OneOf constrains the named attribute to a set of values.
func (k *Knowledge) OneOf(s Schema, attr string, values ...string) error {
	if len(values) == 0 {
		return fmt.Errorf("relation: OneOf needs at least one value")
	}
	set := map[int]bool{}
	var ai int
	for _, v := range values {
		a, vi, err := s.ValueIndex(attr, v)
		if err != nil {
			return err
		}
		ai = a
		set[vi] = true
	}
	k.allowed[ai] = set
	return nil
}

// Range constrains an ordered attribute to the inclusive index range between
// two values ("Mary's age is between 30 and 35").
func (k *Knowledge) Range(s Schema, attr, lo, hi string) error {
	ai, li, err := s.ValueIndex(attr, lo)
	if err != nil {
		return err
	}
	_, hiIdx, err := s.ValueIndex(attr, hi)
	if err != nil {
		return err
	}
	if !s.Attrs[ai].Ordered {
		return fmt.Errorf("relation: attribute %q is not ordered", attr)
	}
	if li > hiIdx {
		li, hiIdx = hiIdx, li
	}
	set := map[int]bool{}
	for v := li; v <= hiIdx; v++ {
		set[v] = true
	}
	k.allowed[ai] = set
	return nil
}

// Admits reports whether a record row is consistent with the knowledge.
func (k *Knowledge) Admits(row func(attr int) int) bool {
	for a, set := range k.allowed {
		if set != nil && !set[row(a)] {
			return false
		}
	}
	return true
}

// Compliant reports whether the knowledge admits the individual's true
// record — the relational analogue of belief-function compliancy.
func (k *Knowledge) Compliant(r *Relation, individual int) bool {
	return k.Admits(func(a int) int { return r.Value(individual, a) })
}

// PartialInfo maps individual ids to the hacker's knowledge about them;
// individuals not in the map are unknowns (complete bipartite rows, as for
// Bob in the paper's example).
type PartialInfo map[int]*Knowledge

// BuildGraph sets up the Section 8.1 bipartite graph: an edge connects
// anonymized record w′ to individual x whenever w's released attribute
// values are consistent with the hacker's knowledge about x.
//
//lint:allow ctxbudget n² consistency checks bounded by the explicit graph it allocates anyway; downstream estimators are budgeted
func BuildGraph(r *Relation, info PartialInfo) *bipartite.Explicit {
	n := r.Records()
	adj := make([][]int, n)
	for w := 0; w < n; w++ {
		for x := 0; x < n; x++ {
			k := info[x]
			if k == nil || k.Admits(func(a int) int { return r.Value(w, a) }) {
				adj[w] = append(adj[w], x)
			}
		}
	}
	return &bipartite.Explicit{N: n, Adj: adj}
}

// AssessDisclosure runs the O-estimate (with propagation) on the knowledge-
// induced graph and reports the expected number of re-identified
// individuals. For graphs small enough (n ≤ bipartite.MaxExactN) exact can
// be requested, which adds the permanent-based expectation.
func AssessDisclosure(r *Relation, info PartialInfo, exact bool) (*DisclosureReport, error) {
	return AssessDisclosureCtx(context.Background(), r, info, exact)
}

// AssessDisclosureCtx is AssessDisclosure under a work budget. The
// O-estimate always completes; the optional permanent-based exact value is
// the expensive part and degrades gracefully — when its budget runs out the
// report is returned without it (HasExact false, Degraded set) instead of
// failing, since the O-estimate already answers the question.
func AssessDisclosureCtx(ctx context.Context, r *Relation, info PartialInfo, exact bool) (*DisclosureReport, error) {
	g := BuildGraph(r, info)
	rep := &DisclosureReport{Individuals: r.Records()}
	oe, err := core.OEstimateExplicitCtx(ctx, g, core.OEOptions{Propagate: true})
	if errors.Is(err, bipartite.ErrInfeasible) {
		rep.Infeasible = true
		oe, err = core.OEstimateExplicitCtx(ctx, g, core.OEOptions{})
	}
	if err != nil {
		return nil, err
	}
	rep.OEstimate = oe.Value
	rep.Forced = oe.Forced
	oe.Crackable.ForEach(func(x int) {
		if oe.Outdeg[x] == 1 {
			rep.PinnedDown = append(rep.PinnedDown, x)
		}
	})
	if exact && !rep.Infeasible {
		v, err := core.ExactExpectedCracksCtx(ctx, g)
		switch {
		case err == nil:
			rep.Exact = v
			rep.HasExact = true
		case budget.Degradable(err):
			rep.Degraded = true
			rep.DegradedReason = err.Error()
		default:
			return nil, err
		}
	}
	return rep, nil
}

// DisclosureReport summarizes a relational disclosure assessment.
type DisclosureReport struct {
	Individuals int
	OEstimate   float64
	Forced      int
	PinnedDown  []int   // individuals identified with certainty
	Exact       float64 // permanent-based expectation (when requested)
	HasExact    bool
	Infeasible  bool // knowledge admits no global assignment; per-item estimate
	// Degraded marks that the exact tier was requested but its work budget
	// ran out; the O-estimate above still answers.
	Degraded       bool
	DegradedReason string
}

// RandomRelation generates a population for tests and examples: each
// attribute value is drawn independently from a Zipf-ish distribution over
// the attribute's vocabulary.
//
//lint:allow ctxbudget test-data generator, linear in the n·|attrs| table it fills
func RandomRelation(schema Schema, n int, rng *rand.Rand) (*Relation, error) {
	rows := make([][]int, n)
	names := make([]string, n)
	for i := range rows {
		row := make([]int, len(schema.Attrs))
		for a, attr := range schema.Attrs {
			// Zipf-ish: value v with weight 1/(v+1).
			total := 0.0
			for v := range attr.Values {
				total += 1 / float64(v+1)
			}
			u := rng.Float64() * total
			for v := range attr.Values {
				u -= 1 / float64(v+1)
				if u <= 0 {
					row[a] = v
					break
				}
			}
		}
		rows[i] = row
		names[i] = fmt.Sprintf("person-%03d", i)
	}
	return New(schema, names, rows)
}
