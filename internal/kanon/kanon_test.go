package kanon

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func testSchema() relation.Schema {
	return relation.Schema{Attrs: []relation.Attribute{
		{Name: "age", Values: []string{"20", "30", "40", "50"}, Ordered: true},
		{Name: "zip", Values: []string{"111", "112", "121", "122"}},
	}}
}

func TestAutoHierarchyOrdered(t *testing.T) {
	h := AutoHierarchy(testSchema().Attrs[0])
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// 4 values -> levels: identity(4), pairs(2), all(1).
	if h.Levels() != 3 {
		t.Fatalf("Levels = %d, want 3", h.Levels())
	}
	if len(h.Labels[1]) != 2 {
		t.Errorf("level 1 vocabulary %v, want 2 ranges", h.Labels[1])
	}
	if h.Map[1][0] != h.Map[1][1] || h.Map[1][1] == h.Map[1][2] {
		t.Errorf("level 1 map %v: want {20,30} and {40,50} merged pairwise", h.Map[1])
	}
	if h.Labels[1][0] != "20..30" {
		t.Errorf("level 1 label %q, want 20..30", h.Labels[1][0])
	}
}

func TestAutoHierarchyUnordered(t *testing.T) {
	h := AutoHierarchy(testSchema().Attrs[1])
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if h.Levels() != 2 || len(h.Labels[1]) != 1 {
		t.Fatalf("unordered hierarchy = %d levels, top %v", h.Levels(), h.Labels[h.Levels()-1])
	}
}

func TestAutoHierarchyOddAndSingle(t *testing.T) {
	odd := relation.Attribute{Name: "a", Values: []string{"1", "2", "3", "4", "5"}, Ordered: true}
	h := AutoHierarchy(odd)
	if err := h.Validate(); err != nil {
		t.Fatalf("odd hierarchy: %v", err)
	}
	single := relation.Attribute{Name: "b", Values: []string{"only"}}
	hs := AutoHierarchy(single)
	if err := hs.Validate(); err != nil {
		t.Fatalf("single-value hierarchy: %v", err)
	}
	if hs.Levels() != 1 {
		t.Errorf("single-value hierarchy has %d levels, want 1", hs.Levels())
	}
}

func TestHierarchyValidateRejects(t *testing.T) {
	bad := []Hierarchy{
		{},
		{Labels: [][]string{{"a", "b"}}, Map: [][]int{{0, 0}}},                                                                         // level 0 not identity
		{Labels: [][]string{{"a", "b"}, {"*"}}, Map: [][]int{{0, 1}, {0}}},                                                             // wrong map length
		{Labels: [][]string{{"a", "b"}, {"x"}}, Map: [][]int{{0, 1}, {0, 1}}},                                                          // label out of range
		{Labels: [][]string{{"a", "b"}, {"x", "y"}}, Map: [][]int{{0, 1}, {0, 1}}},                                                     // top not merged
		{Labels: [][]string{{"a", "b", "c"}, {"x", "y"}, {"p", "q"}, {"*"}}, Map: [][]int{{0, 1, 2}, {0, 0, 1}, {0, 1, 1}, {0, 0, 0}}}, // splits merged values
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func buildPopulation(t testing.TB, n int, seed int64) *relation.Relation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	r, err := relation.RandomRelation(testSchema(), n, rng)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAnonymizeReachesK(t *testing.T) {
	r := buildPopulation(t, 60, 1)
	hs := []Hierarchy{AutoHierarchy(testSchema().Attrs[0]), AutoHierarchy(testSchema().Attrs[1])}
	for _, k := range []int{1, 2, 5, 10, 30} {
		res, err := Anonymize(r, hs, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.AchievedK < k {
			t.Errorf("k=%d: achieved %d", k, res.AchievedK)
		}
		if res.Relation.MinAnonymitySet() != res.AchievedK {
			t.Errorf("k=%d: AchievedK %d but view says %d", k, res.AchievedK, res.Relation.MinAnonymitySet())
		}
		if res.Precision < 0 || res.Precision > 1 {
			t.Errorf("k=%d: precision %v out of range", k, res.Precision)
		}
		if LevelString(res.Relation, res.Levels) == "" {
			t.Error("empty level string")
		}
	}
}

func TestAnonymizeMinimality(t *testing.T) {
	// The chosen level vector must have minimal total height: no vector with
	// a smaller sum may achieve k.
	r := buildPopulation(t, 40, 2)
	hs := []Hierarchy{AutoHierarchy(testSchema().Attrs[0]), AutoHierarchy(testSchema().Attrs[1])}
	res, err := Anonymize(r, hs, 4)
	if err != nil {
		t.Fatal(err)
	}
	chosen := res.Levels[0] + res.Levels[1]
	for l0 := 0; l0 <= hs[0].Levels()-1; l0++ {
		for l1 := 0; l1 <= hs[1].Levels()-1; l1++ {
			if l0+l1 >= chosen {
				continue
			}
			view, err := generalizeForTest(r, hs, []int{l0, l1})
			if err != nil {
				t.Fatal(err)
			}
			if view.MinAnonymitySet() >= 4 {
				t.Fatalf("levels (%d,%d) with smaller height also reach k=4; chosen %v", l0, l1, res.Levels)
			}
		}
	}
}

// generalizeForTest exposes the internal view construction for the
// minimality check.
func generalizeForTest(r *relation.Relation, hs []Hierarchy, levels []int) (*relation.Relation, error) {
	return generalize(r, hs, levels)
}

func TestAnonymizeReducesDisclosure(t *testing.T) {
	// The point of the baseline: growing k shrinks the full-knowledge
	// expected cracks (fewer, larger anonymity sets) at decreasing precision.
	r := buildPopulation(t, 100, 3)
	hs := []Hierarchy{AutoHierarchy(testSchema().Attrs[0]), AutoHierarchy(testSchema().Attrs[1])}
	prevCracks := r.ExpectedCracksFullKnowledge() + 1
	prevPrec := 1.1
	for _, k := range []int{1, 3, 10, 50} {
		res, err := Anonymize(r, hs, k)
		if err != nil {
			t.Fatal(err)
		}
		cracks := res.Relation.ExpectedCracksFullKnowledge()
		if cracks > prevCracks {
			t.Errorf("k=%d: cracks %v grew from %v", k, cracks, prevCracks)
		}
		if res.Precision > prevPrec {
			t.Errorf("k=%d: precision %v grew from %v", k, res.Precision, prevPrec)
		}
		prevCracks, prevPrec = cracks, res.Precision
	}
}

func TestAnonymizeErrors(t *testing.T) {
	r := buildPopulation(t, 10, 4)
	hs := []Hierarchy{AutoHierarchy(testSchema().Attrs[0]), AutoHierarchy(testSchema().Attrs[1])}
	if _, err := Anonymize(r, hs, 0); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := Anonymize(r, hs, 11); err == nil {
		t.Error("k > records: want error")
	}
	if _, err := Anonymize(r, hs[:1], 2); err == nil {
		t.Error("missing hierarchy: want error")
	}
	if _, err := Anonymize(r, []Hierarchy{hs[0], {}}, 2); err == nil {
		t.Error("invalid hierarchy: want error")
	}
	wrong := AutoHierarchy(relation.Attribute{Name: "zip", Values: []string{"a", "b", "c"}})
	if _, err := Anonymize(r, []Hierarchy{hs[0], wrong}, 2); err == nil {
		t.Error("hierarchy vocabulary mismatch: want error")
	}
}
