// Package kanon implements full-domain generalization k-anonymization of
// categorical relations (Samarati & Sweeney — references [22, 23] of the
// paper). The paper positions plain anonymization against such "more
// sophisticated techniques": k-anonymity actually perturbs the data (values
// become coarser, records indistinguishable), trading mining fidelity for
// identity protection. This package provides the baseline so the trade-off
// the paper alludes to can be measured: expected re-identifications (via the
// anonymity-set form of Lemma 3) versus information loss.
package kanon

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// Hierarchy is a generalization hierarchy for one attribute: level 0 is the
// original vocabulary; each level maps the original values onto
// progressively coarser labels, ending in a single "*" class.
type Hierarchy struct {
	// Labels[l] is the vocabulary at level l (Labels[0] = original values).
	Labels [][]string
	// Map[l][v] = index into Labels[l] of original value v at level l;
	// Map[0] is the identity.
	Map [][]int
}

// Levels returns the number of generalization levels (>= 1).
func (h Hierarchy) Levels() int { return len(h.Labels) }

// Validate checks structural consistency and that generalization is
// monotone: values mapped together at level l stay together at level l+1.
func (h Hierarchy) Validate() error {
	if len(h.Labels) == 0 || len(h.Labels) != len(h.Map) {
		return fmt.Errorf("kanon: hierarchy needs matching Labels/Map levels")
	}
	base := len(h.Map[0])
	for v, lbl := range h.Map[0] {
		if lbl != v {
			return fmt.Errorf("kanon: level 0 must be the identity (value %d maps to %d)", v, lbl)
		}
	}
	for l := 0; l < len(h.Map); l++ {
		if len(h.Map[l]) != base {
			return fmt.Errorf("kanon: level %d maps %d values, want %d", l, len(h.Map[l]), base)
		}
		for v, lbl := range h.Map[l] {
			if lbl < 0 || lbl >= len(h.Labels[l]) {
				return fmt.Errorf("kanon: level %d value %d maps to label %d of %d", l, v, lbl, len(h.Labels[l]))
			}
		}
	}
	for l := 1; l < len(h.Map); l++ {
		// Monotone: equal at l-1 implies equal at l.
		rep := map[int]int{}
		for v := 0; v < base; v++ {
			prev := h.Map[l-1][v]
			if r, ok := rep[prev]; ok {
				if h.Map[l][v] != h.Map[l][r] {
					return fmt.Errorf("kanon: level %d splits values %d and %d merged at level %d", l, v, r, l-1)
				}
			} else {
				rep[prev] = v
			}
		}
	}
	top := h.Map[len(h.Map)-1]
	for _, lbl := range top {
		if lbl != top[0] {
			return fmt.Errorf("kanon: top level must merge everything")
		}
	}
	return nil
}

// AutoHierarchy builds a generic hierarchy for an attribute: ordered
// attributes get binary interval merging (pairs, quadruples, ...); unordered
// ones get a two-level hierarchy (original values, then "*").
func AutoHierarchy(attr relation.Attribute) Hierarchy {
	n := len(attr.Values)
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	h := Hierarchy{
		Labels: [][]string{append([]string(nil), attr.Values...)},
		Map:    [][]int{identity},
	}
	if !attr.Ordered {
		if n > 1 {
			h.Labels = append(h.Labels, []string{"*"})
			h.Map = append(h.Map, make([]int, n))
		}
		return h
	}
	// Binary merging for ordered attributes.
	for {
		prev := h.Map[len(h.Map)-1]
		prevLabels := h.Labels[len(h.Labels)-1]
		if len(prevLabels) == 1 {
			break
		}
		newMap := make([]int, n)
		var newLabels []string
		labelOf := map[int]int{}
		for v := 0; v < n; v++ {
			g := prev[v] / 2
			if _, ok := labelOf[g]; !ok {
				labelOf[g] = len(newLabels)
				lo := attr.Values[firstWith(prev, g*2)]
				hi := attr.Values[lastWith(prev, g*2+1, len(prevLabels)-1)]
				newLabels = append(newLabels, lo+".."+hi)
			}
			newMap[v] = labelOf[g]
		}
		h.Labels = append(h.Labels, newLabels)
		h.Map = append(h.Map, newMap)
	}
	if len(h.Labels[len(h.Labels)-1]) > 1 {
		h.Labels = append(h.Labels, []string{"*"})
		h.Map = append(h.Map, make([]int, n))
	}
	return h
}

func firstWith(m []int, label int) int {
	for v, l := range m {
		if l == label {
			return v
		}
	}
	// Label absent (odd tail): fall back to the previous one.
	return firstWith(m, label-1)
}

func lastWith(m []int, label, maxLabel int) int {
	if label > maxLabel {
		label = maxLabel
	}
	last := -1
	for v, l := range m {
		if l == label {
			last = v
		}
	}
	if last < 0 {
		return lastWith(m, label-1, maxLabel)
	}
	return last
}

// Result is a k-anonymized release.
type Result struct {
	Relation  *relation.Relation // the generalized view
	Levels    []int              // chosen generalization level per attribute
	K         int                // requested k
	AchievedK int                // the actual minimum anonymity-set size
	// Precision is Sweeney's Prec metric: 1 − mean(level/maxLevel) over
	// attributes; 1 = untouched, 0 = everything generalized to "*".
	Precision float64
}

// Anonymize finds a minimal full-domain generalization making the relation
// k-anonymous, searching level vectors in order of increasing total height
// (Samarati's lattice search; exhaustive, fine for the handful of attributes
// categorical microdata has). It returns an error when even full
// generalization cannot reach k (i.e. k > number of records).
func Anonymize(rel *relation.Relation, hierarchies []Hierarchy, k int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("kanon: k = %d, want >= 1", k)
	}
	attrs := len(rel.Schema.Attrs)
	if len(hierarchies) != attrs {
		return nil, fmt.Errorf("kanon: %d hierarchies for %d attributes", len(hierarchies), attrs)
	}
	for a, h := range hierarchies {
		if err := h.Validate(); err != nil {
			return nil, fmt.Errorf("attribute %q: %w", rel.Schema.Attrs[a].Name, err)
		}
		if len(h.Map[0]) != len(rel.Schema.Attrs[a].Values) {
			return nil, fmt.Errorf("kanon: hierarchy for %q covers %d values, want %d",
				rel.Schema.Attrs[a].Name, len(h.Map[0]), len(rel.Schema.Attrs[a].Values))
		}
	}
	if k > rel.Records() {
		return nil, fmt.Errorf("kanon: k = %d exceeds the %d records", k, rel.Records())
	}

	maxLevels := make([]int, attrs)
	total := 0
	for a, h := range hierarchies {
		maxLevels[a] = h.Levels() - 1
		total += maxLevels[a]
	}
	// Enumerate level vectors by ascending height sum.
	for height := 0; height <= total; height++ {
		var best *Result
		enumerateLevels(maxLevels, height, func(levels []int) {
			if best != nil {
				return
			}
			view, err := generalize(rel, hierarchies, levels)
			if err != nil {
				return
			}
			if ak := view.MinAnonymitySet(); ak >= k {
				best = &Result{
					Relation:  view,
					Levels:    append([]int(nil), levels...),
					K:         k,
					AchievedK: ak,
					Precision: precision(levels, maxLevels),
				}
			}
		})
		if best != nil {
			return best, nil
		}
	}
	return nil, fmt.Errorf("kanon: cannot reach %d-anonymity (should be impossible with k <= records)", k)
}

// enumerateLevels visits every level vector with the given total height.
func enumerateLevels(maxLevels []int, height int, visit func([]int)) {
	levels := make([]int, len(maxLevels))
	var rec func(a, rem int)
	rec = func(a, rem int) {
		if a == len(levels) {
			if rem == 0 {
				visit(levels)
			}
			return
		}
		hi := maxLevels[a]
		if rem < hi {
			hi = rem
		}
		for l := 0; l <= hi; l++ {
			levels[a] = l
			rec(a+1, rem-l)
		}
	}
	rec(0, height)
}

// generalize materializes the view of rel at the given levels as a fresh
// relation over the coarser vocabularies.
func generalize(rel *relation.Relation, hierarchies []Hierarchy, levels []int) (*relation.Relation, error) {
	attrs := make([]relation.Attribute, len(levels))
	for a, l := range levels {
		attrs[a] = relation.Attribute{
			Name:    rel.Schema.Attrs[a].Name,
			Values:  append([]string(nil), hierarchies[a].Labels[l]...),
			Ordered: rel.Schema.Attrs[a].Ordered,
		}
	}
	rows := make([][]int, rel.Records())
	for i := range rows {
		row := make([]int, len(levels))
		for a, l := range levels {
			row[a] = hierarchies[a].Map[l][rel.Value(i, a)]
		}
		rows[i] = row
	}
	return relation.New(relation.Schema{Attrs: attrs}, rel.Names, rows)
}

func precision(levels, maxLevels []int) float64 {
	sum, cnt := 0.0, 0
	for a := range levels {
		if maxLevels[a] > 0 {
			sum += float64(levels[a]) / float64(maxLevels[a])
			cnt++
		}
	}
	if cnt == 0 {
		return 1
	}
	return 1 - sum/float64(cnt)
}

// LevelString renders a level vector for reports.
func LevelString(rel *relation.Relation, levels []int) string {
	parts := make([]string, len(levels))
	for a, l := range levels {
		parts[a] = fmt.Sprintf("%s:%d", rel.Schema.Attrs[a].Name, l)
	}
	sort.Strings(parts)
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
