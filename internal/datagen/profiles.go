package datagen

// The six benchmark plans below are instantiated directly from the paper's
// Figure 9: domain size, transaction count, number of frequency groups,
// number of singleton groups and the median/mean gap between successive
// groups are the published values, so the generated support-count structure
// matches the real UCI/FIMI datasets on every statistic the risk analysis
// consumes. EXPERIMENTS.md lists measured-vs-paper values per dataset.
var (
	// CONNECT: 130 items, dense; almost every item in its own group.
	CONNECT = GroupPlan{Name: "CONNECT", Items: 130, Transactions: 67557,
		Groups: 125, Singletons: 122, MedianGapFreq: 0.0029, MeanGapFreq: 0.0081, MaxGapFreq: 0.0519}
	// PUMSB: census data; a dense cluster of near-adjacent counts plus a
	// long high-frequency tail.
	PUMSB = GroupPlan{Name: "PUMSB", Items: 2113, Transactions: 49046,
		Groups: 650, Singletons: 421, MedianGapFreq: 0.000041, MeanGapFreq: 0.00154, MaxGapFreq: 0.0536}
	// ACCIDENTS: many transactions, moderately many items, strong skew.
	ACCIDENTS = GroupPlan{Name: "ACCIDENTS", Items: 469, Transactions: 340184,
		Groups: 310, Singletons: 286, MedianGapFreq: 0.000176, MeanGapFreq: 0.00324, MaxGapFreq: 0.04966}
	// RETAIL: the paper's "sparse" outlier — a huge domain where most items
	// have tiny support, piling into consecutive low counts (median gap is
	// the minimum possible, one transaction).
	RETAIL = GroupPlan{Name: "RETAIL", Items: 16470, Transactions: 88163,
		Groups: 582, Singletons: 218, MedianGapFreq: 0.0000113, MeanGapFreq: 0.00099, MaxGapFreq: 0.30102}
	// MUSHROOM: small domain, mostly-distinct counts with some collisions.
	MUSHROOM = GroupPlan{Name: "MUSHROOM", Items: 120, Transactions: 8124,
		Groups: 90, Singletons: 77, MedianGapFreq: 0.00394, MeanGapFreq: 0.01124, MaxGapFreq: 0.1477}
	// CHESS: tiny dense domain, counts spread nearly uniformly.
	CHESS = GroupPlan{Name: "CHESS", Items: 75, Transactions: 3196,
		Groups: 73, Singletons: 71, MedianGapFreq: 0.00657, MeanGapFreq: 0.01389, MaxGapFreq: 0.0494}
)

// Benchmarks lists the six plans in the order of Figure 9.
func Benchmarks() []GroupPlan {
	return []GroupPlan{CONNECT, PUMSB, ACCIDENTS, RETAIL, MUSHROOM, CHESS}
}

// ByName returns the benchmark plan with the given (case-insensitive by
// upper-casing convention — names are stored upper-case) name.
func ByName(name string) (GroupPlan, bool) {
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, true
		}
	}
	return GroupPlan{}, false
}
