// Package datagen synthesizes benchmark datasets whose frequency structure
// mimics the six real datasets of the paper's Figure 9 (CONNECT, PUMSB,
// ACCIDENTS, RETAIL, MUSHROOM, CHESS from the UCI/FIMI repositories, which
// are unreachable in this offline reproduction — see DESIGN.md).
//
// Every analysis in the paper depends on a dataset only through the multiset
// of item support counts, so the generators plant support counts drawn from a
// per-dataset parametric profile and, when transactions are needed, place
// each item into a uniform random subset of transactions of exactly its
// support count. Group structure (and hence all risk estimates) is preserved
// exactly by construction.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
)

// Profile parameterizes a synthetic benchmark: support counts are drawn as
//
//	count = MinCount + round((MaxCount−MinCount) · u^Skew),  u ~ U(0,1)
//
// so Skew = 1 spreads counts uniformly (dense datasets with mostly singleton
// frequency groups, like CHESS or CONNECT) while large Skew piles items onto
// small counts (sparse datasets with huge low-frequency groups, like RETAIL).
type Profile struct {
	Name         string
	Items        int
	Transactions int
	MinCount     int
	MaxCount     int
	Skew         float64
}

// Validate checks the profile parameters.
func (p Profile) Validate() error {
	if p.Items <= 0 || p.Transactions <= 0 {
		return fmt.Errorf("datagen: %s: non-positive sizes", p.Name)
	}
	if p.MinCount < 0 || p.MaxCount > p.Transactions || p.MinCount > p.MaxCount {
		return fmt.Errorf("datagen: %s: count range [%d,%d] invalid for %d transactions",
			p.Name, p.MinCount, p.MaxCount, p.Transactions)
	}
	if p.Skew <= 0 {
		return fmt.Errorf("datagen: %s: skew %v, want > 0", p.Name, p.Skew)
	}
	return nil
}

// Counts draws a support-count table from the profile.
func (p Profile) Counts(rng *rand.Rand) (*dataset.FrequencyTable, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	counts := make([]int, p.Items)
	span := float64(p.MaxCount - p.MinCount)
	for i := range counts {
		u := rng.Float64()
		counts[i] = p.MinCount + int(span*math.Pow(u, p.Skew)+0.5)
	}
	return dataset.NewTable(p.Transactions, counts)
}

// Database draws a full transaction database from the profile: support counts
// are drawn as in Counts, then each item is planted into a uniform random
// subset of transactions of exactly that size. Transactions left empty are
// dropped (support counts are preserved; only the denominator shrinks, which
// leaves the grouping by count untouched).
func (p Profile) Database(rng *rand.Rand) (*dataset.Database, error) {
	ft, err := p.Counts(rng)
	if err != nil {
		return nil, err
	}
	return PlantDatabase(ft, rng)
}

// PlantDatabase materializes transactions realizing the exact support counts
// of the table: item x appears in Counts[x] uniformly chosen distinct
// transactions, independently across items. Empty transactions are dropped.
func PlantDatabase(ft *dataset.FrequencyTable, rng *rand.Rand) (*dataset.Database, error) {
	m := ft.NTransactions
	txs := make([]dataset.Transaction, m)
	for x, c := range ft.Counts {
		for _, t := range SampleDistinct(m, c, rng) {
			txs[t] = append(txs[t], dataset.Item(x))
		}
	}
	nonEmpty := txs[:0]
	for _, t := range txs {
		if len(t) > 0 {
			nonEmpty = append(nonEmpty, t)
		}
	}
	if len(nonEmpty) == 0 {
		return nil, fmt.Errorf("datagen: all transactions empty (all counts zero)")
	}
	return dataset.New(ft.NItems, nonEmpty)
}

// SampleDistinct returns c distinct integers drawn uniformly from [0, m)
// using Floyd's algorithm, in O(c) expected time. When c > m/2 it samples the
// complement instead.
func SampleDistinct(m, c int, rng *rand.Rand) []int {
	if c < 0 || c > m {
		panic(fmt.Sprintf("datagen: cannot sample %d distinct of %d", c, m))
	}
	if c == 0 {
		return nil
	}
	if c > m/2 {
		// Sample the complement and invert.
		excl := make(map[int]bool, m-c)
		for _, v := range SampleDistinct(m, m-c, rng) {
			excl[v] = true
		}
		out := make([]int, 0, c)
		for v := 0; v < m; v++ {
			if !excl[v] {
				out = append(out, v)
			}
		}
		return out
	}
	seen := make(map[int]bool, c)
	out := make([]int, 0, c)
	for j := m - c; j < m; j++ {
		v := rng.Intn(j + 1)
		if seen[v] {
			v = j
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}
