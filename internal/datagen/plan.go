package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// GroupPlan plants a support-count structure directly from the summary
// statistics the paper's Figure 9 reports: number of frequency groups,
// number of singleton groups, and the median/mean gap between successive
// groups. Gaps are drawn from a lognormal law whose median matches
// MedianGapFreq and whose tail weight matches the mean/median ratio, then
// rescaled so the total span matches MeanGapFreq·(Groups−1); group sizes
// beyond the singletons are allocated with a power-law bias toward the
// low-frequency end, where ties concentrate in real transaction data.
type GroupPlan struct {
	Name          string
	Items         int     // domain size n
	Transactions  int     // m
	Groups        int     // g, distinct support counts
	Singletons    int     // groups of size exactly 1
	MedianGapFreq float64 // target median gap between successive groups
	MeanGapFreq   float64 // target mean gap (controls the overall span)
	MaxGapFreq    float64 // truncation for the lognormal gap tail (0 = none)
	SizeSkew      float64 // power-law exponent for non-singleton group sizes (default 1.2)
	// GapCluster pairs a fraction of the large tail gaps with small partner
	// gaps, so that high-frequency groups come in close pairs instead of
	// being isolated. Real datasets differ in this joint structure (it is
	// not captured by Figure 9's marginals): ACCIDENTS-like data keeps its
	// singleton groups camouflaged by near-twins, while CONNECT-like data
	// leaves them isolated. 0 (default) = gaps fully sorted; 1 = every tail
	// gap is followed by a small partner. The gap multiset — and hence every
	// Figure 9 statistic — is unchanged.
	GapCluster float64
}

// Validate checks plan consistency.
func (p GroupPlan) Validate() error {
	if p.Items <= 0 || p.Transactions <= 0 {
		return fmt.Errorf("datagen: %s: non-positive sizes", p.Name)
	}
	if p.Groups < 1 || p.Groups > p.Items {
		return fmt.Errorf("datagen: %s: %d groups for %d items", p.Name, p.Groups, p.Items)
	}
	if p.Singletons < 0 || p.Singletons > p.Groups {
		return fmt.Errorf("datagen: %s: %d singletons of %d groups", p.Name, p.Singletons, p.Groups)
	}
	if p.Groups == p.Items && p.Singletons != p.Groups {
		return fmt.Errorf("datagen: %s: all groups must be singletons when g = n", p.Name)
	}
	if p.Items > p.Groups && p.Singletons == p.Groups {
		return fmt.Errorf("datagen: %s: extra items need non-singleton groups", p.Name)
	}
	if p.Groups > 1 && (p.MedianGapFreq <= 0 || p.MeanGapFreq < p.MedianGapFreq) {
		return fmt.Errorf("datagen: %s: gap targets median=%v mean=%v invalid", p.Name, p.MedianGapFreq, p.MeanGapFreq)
	}
	if p.Groups > p.Transactions+1 {
		return fmt.Errorf("datagen: %s: %d distinct counts cannot fit %d transactions", p.Name, p.Groups, p.Transactions)
	}
	return nil
}

// Counts draws a support-count table realizing the plan. The number of
// groups and singletons match the plan exactly; gap statistics match in
// distribution.
func (p GroupPlan) Counts(rng *rand.Rand) (*dataset.FrequencyTable, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := float64(p.Transactions)
	g := p.Groups

	// 1. Distinct support counts via lognormal gaps (in count units).
	counts := make([]int, g)
	if g == 1 {
		counts[0] = 1 + rng.Intn(p.Transactions)
	} else {
		medianGap := p.MedianGapFreq * m
		meanGap := p.MeanGapFreq * m
		sigma := 0.0
		if meanGap > medianGap {
			sigma = math.Sqrt(2 * math.Log(meanGap/medianGap))
		}
		mu := math.Log(medianGap)
		gaps := make([]float64, g-1)
		total := 0.0
		maxGap := math.Inf(1)
		if p.MaxGapFreq > 0 {
			maxGap = p.MaxGapFreq * m
		}
		for i := range gaps {
			gaps[i] = math.Exp(mu + sigma*rng.NormFloat64())
			if gaps[i] > maxGap {
				gaps[i] = maxGap
			}
			total += gaps[i]
		}
		// In real transaction data the gap size grows with frequency: the
		// low-support region is dense (consecutive counts) and the tail
		// sparse. Sorting preserves every gap statistic while placing the
		// gaps accordingly; GapCluster then re-pairs part of the tail.
		sort.Float64s(gaps)
		clusterTail(gaps, p.GapCluster)
		// Rescale so the span matches the target mean; keep every gap >= 1
		// count so groups stay distinct.
		span := meanGap * float64(g-1)
		maxSpan := float64(p.Transactions - g) // leave room for base count
		if maxSpan < 1 {
			maxSpan = 1
		}
		if span > maxSpan {
			span = maxSpan
		}
		scale := span / total
		c := 1.0
		counts[0] = 1
		for i := 1; i < g; i++ {
			c += gaps[i-1] * scale
			v := int(c + 0.5)
			if v <= counts[i-1] {
				v = counts[i-1] + 1
			}
			counts[i] = v
		}
		// Clamp into [1, m] while preserving distinctness from the top.
		if counts[g-1] > p.Transactions {
			over := counts[g-1] - p.Transactions
			for i := range counts {
				counts[i] -= over
			}
			for i := 0; i < g; i++ {
				if low := i + 1; counts[i] < low {
					counts[i] = low
				}
			}
		}
	}

	// 2. Group sizes: singleton groups get 1 item; the rest share the
	// remaining items with power-law weights favouring low counts.
	sizes := make([]int, g)
	for i := range sizes {
		sizes[i] = 1
	}
	heavy := g - p.Singletons
	extra := p.Items - g
	if heavy > 0 && extra > 0 {
		// The heavy groups are the lowest-count ones (ties concentrate at low
		// support in transaction data). Each must exceed 1; distribute the
		// rest by weight 1/(rank+1)^SizeSkew.
		skew := p.SizeSkew
		if skew <= 0 {
			skew = 1.2
		}
		for i := 0; i < heavy; i++ {
			sizes[i]++
		}
		extra -= heavy
		weights := make([]float64, heavy)
		wsum := 0.0
		for i := range weights {
			weights[i] = math.Pow(float64(i+1), -skew)
			wsum += weights[i]
		}
		assigned := 0
		for i := range weights {
			add := int(float64(extra) * weights[i] / wsum)
			sizes[i] += add
			assigned += add
		}
		for r := extra - assigned; r > 0; r-- {
			sizes[rng.Intn(heavy)]++
		}
	}

	// 3. Expand to per-item counts and shuffle item ids.
	itemCounts := make([]int, 0, p.Items)
	for i, c := range counts {
		for j := 0; j < sizes[i]; j++ {
			itemCounts = append(itemCounts, c)
		}
	}
	rng.Shuffle(len(itemCounts), func(i, j int) {
		itemCounts[i], itemCounts[j] = itemCounts[j], itemCounts[i]
	})
	return dataset.NewTable(p.Transactions, itemCounts)
}

// clusterTail rearranges sorted-ascending gaps so that a `cluster` fraction
// of the largest gaps are each immediately followed by one of the smallest
// gaps drawn from just below the median: tail groups then appear as close
// pairs separated by large jumps. Only the order changes; the multiset of
// gaps (and so every gap statistic) is preserved.
func clusterTail(gaps []float64, cluster float64) {
	n := len(gaps)
	if cluster <= 0 || n < 4 {
		return
	}
	t := int(cluster * float64(n) / 2)
	if t > n/2 {
		t = n / 2
	}
	if t == 0 {
		return
	}
	// Partners come from the top of the small half (just below the median),
	// leaving the very smallest gaps in the dense low-frequency region.
	small := append([]float64(nil), gaps[n/2-t:n/2]...)
	large := append([]float64(nil), gaps[n-t:]...)
	head := append([]float64(nil), gaps[:n/2-t]...)
	mid := append([]float64(nil), gaps[n/2:n-t]...)
	out := gaps[:0]
	out = append(out, head...)
	out = append(out, mid...)
	for i := 0; i < t; i++ {
		out = append(out, large[i], small[i])
	}
}

// Database draws a full transaction database realizing the plan.
func (p GroupPlan) Database(rng *rand.Rand) (*dataset.Database, error) {
	ft, err := p.Counts(rng)
	if err != nil {
		return nil, err
	}
	return PlantDatabase(ft, rng)
}

// sortFloats is a test seam around sort.Float64s.
func sortFloats(xs []float64) { sort.Float64s(xs) }
