package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// QuestConfig parameterizes a correlated transaction generator in the spirit
// of the IBM QUEST synthetic data generator used throughout the frequent-set
// mining literature: transactions are unions of a few "potentially large"
// itemsets drawn from a Zipf-weighted pool, plus uniform noise. Unlike the
// planted-count generators, QUEST data contains genuine multi-item patterns,
// which the mining examples (and the fim package benchmarks) need.
type QuestConfig struct {
	Items           int     // domain size n
	Transactions    int     // number of transactions to generate
	Patterns        int     // size of the pattern pool (default 20)
	MeanPatternLen  int     // average pattern length (default 4)
	PatternsPerTx   int     // average patterns unioned per transaction (default 2)
	NoiseItemsPerTx int     // average uniform noise items per transaction (default 1)
	Zipf            float64 // pattern popularity skew (default 1.0)
}

func (c QuestConfig) withDefaults() QuestConfig {
	if c.Patterns <= 0 {
		c.Patterns = 20
	}
	if c.MeanPatternLen <= 0 {
		c.MeanPatternLen = 4
	}
	if c.PatternsPerTx <= 0 {
		c.PatternsPerTx = 2
	}
	if c.NoiseItemsPerTx < 0 {
		c.NoiseItemsPerTx = 1
	}
	if c.Zipf <= 0 {
		c.Zipf = 1.0
	}
	return c
}

// Quest generates a correlated transaction database.
func Quest(cfg QuestConfig, rng *rand.Rand) (*dataset.Database, error) {
	if cfg.Items <= 1 || cfg.Transactions <= 0 {
		return nil, fmt.Errorf("datagen: quest needs > 1 items and > 0 transactions")
	}
	cfg = cfg.withDefaults()

	// Pattern pool: each pattern is a random itemset whose length is
	// geometric-ish around the mean.
	patterns := make([]dataset.Transaction, cfg.Patterns)
	for i := range patterns {
		l := 1 + rng.Intn(2*cfg.MeanPatternLen-1)
		if l > cfg.Items {
			l = cfg.Items // a pattern cannot exceed the domain
		}
		seen := map[dataset.Item]bool{}
		for len(seen) < l {
			seen[dataset.Item(rng.Intn(cfg.Items))] = true
		}
		for x := range seen {
			patterns[i] = append(patterns[i], x)
		}
		// Map order would otherwise leak into the pattern layout: the same
		// seed must generate byte-identical datasets run to run.
		sort.Slice(patterns[i], func(a, b int) bool { return patterns[i][a] < patterns[i][b] })
	}
	// Zipf popularity weights.
	weights := make([]float64, cfg.Patterns)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), cfg.Zipf)
		total += weights[i]
	}
	pick := func() int {
		u := rng.Float64() * total
		for i, w := range weights {
			u -= w
			if u <= 0 {
				return i
			}
		}
		return cfg.Patterns - 1
	}

	txs := make([]dataset.Transaction, 0, cfg.Transactions)
	for len(txs) < cfg.Transactions {
		items := map[dataset.Item]bool{}
		k := 1 + rng.Intn(2*cfg.PatternsPerTx-1)
		for p := 0; p < k; p++ {
			for _, x := range patterns[pick()] {
				items[x] = true
			}
		}
		for nz := 0; nz < cfg.NoiseItemsPerTx; nz++ {
			if rng.Float64() < 0.5 {
				items[dataset.Item(rng.Intn(cfg.Items))] = true
			}
		}
		if len(items) == 0 {
			continue
		}
		tx := make(dataset.Transaction, 0, len(items))
		for x := range items {
			tx = append(tx, x)
		}
		sort.Slice(tx, func(a, b int) bool { return tx[a] < tx[b] })
		txs = append(txs, tx)
	}
	return dataset.New(cfg.Items, txs)
}
