package datagen

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(50)
		c := rng.Intn(m + 1)
		got := SampleDistinct(m, c, rng)
		if len(got) != c {
			t.Fatalf("SampleDistinct(%d,%d) returned %d values", m, c, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= m || seen[v] {
				t.Fatalf("SampleDistinct(%d,%d) invalid value %d (out of range or dup)", m, c, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctUniform(t *testing.T) {
	// Each element should be included with probability c/m.
	rng := rand.New(rand.NewSource(2))
	m, c, trials := 10, 3, 30000
	hits := make([]int, m)
	for i := 0; i < trials; i++ {
		for _, v := range SampleDistinct(m, c, rng) {
			hits[v]++
		}
	}
	want := float64(trials) * float64(c) / float64(m)
	for v, h := range hits {
		if float64(h) < want*0.93 || float64(h) > want*1.07 {
			t.Errorf("element %d hit %d times, want ~%v", v, h, want)
		}
	}
}

func TestSampleDistinctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for c > m")
		}
	}()
	SampleDistinct(3, 4, rand.New(rand.NewSource(1)))
}

func TestProfileCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Profile{Name: "toy", Items: 500, Transactions: 1000, MinCount: 1, MaxCount: 900, Skew: 3}
	ft, err := p.Counts(rng)
	if err != nil {
		t.Fatal(err)
	}
	if ft.NItems != 500 || ft.NTransactions != 1000 {
		t.Fatalf("table shape (%d,%d)", ft.NItems, ft.NTransactions)
	}
	for x, c := range ft.Counts {
		if c < 1 || c > 900 {
			t.Fatalf("count[%d] = %d outside [1,900]", x, c)
		}
	}
	// Skew 3 pushes the median well below the midpoint.
	med := dataset.Median(ft.Frequencies())
	if med > 0.45 {
		t.Errorf("median frequency %v, want < 0.45 under skew 3", med)
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{Name: "a", Items: 0, Transactions: 10, MinCount: 1, MaxCount: 5, Skew: 1},
		{Name: "b", Items: 5, Transactions: 10, MinCount: 6, MaxCount: 5, Skew: 1},
		{Name: "c", Items: 5, Transactions: 10, MinCount: 1, MaxCount: 11, Skew: 1},
		{Name: "d", Items: 5, Transactions: 10, MinCount: 1, MaxCount: 5, Skew: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %s: want validation error", p.Name)
		}
	}
}

func TestPlantDatabaseRealizesCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ft, err := dataset.NewTable(50, []int{50, 25, 10, 1, 0, 17})
	if err != nil {
		t.Fatal(err)
	}
	db, err := PlantDatabase(ft, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := db.SupportCounts()
	for x, want := range ft.Counts {
		if got[x] != want {
			t.Errorf("planted count[%d] = %d, want %d", x, got[x], want)
		}
	}
	if db.Transactions() > 50 {
		t.Errorf("planted %d transactions, want <= 50", db.Transactions())
	}
	// Every transaction non-empty by construction of PlantDatabase.
	for i := 0; i < db.Transactions(); i++ {
		if len(db.Transaction(i)) == 0 {
			t.Fatal("empty transaction survived planting")
		}
	}
}

func TestPlantDatabaseAllZero(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ft, err := dataset.NewTable(10, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlantDatabase(ft, rng); err == nil {
		t.Error("all-zero counts: want error")
	}
}

func TestGroupPlanExactStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range Benchmarks() {
		ft, err := p.Counts(rng)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		s := dataset.ComputeStats(p.Name, ft)
		if s.NItems != p.Items || s.NTransactions != p.Transactions {
			t.Errorf("%s: shape (%d,%d), want (%d,%d)", p.Name, s.NItems, s.NTransactions, p.Items, p.Transactions)
		}
		if s.NGroups != p.Groups {
			t.Errorf("%s: %d groups, want %d", p.Name, s.NGroups, p.Groups)
		}
		if s.Singleton != p.Singletons {
			t.Errorf("%s: %d singletons, want %d", p.Name, s.Singleton, p.Singletons)
		}
		// Gap statistics should land in a band around the targets.
		if s.MeanGap < 0.5*p.MeanGapFreq || s.MeanGap > 1.5*p.MeanGapFreq {
			t.Errorf("%s: mean gap %v, want within 50%% of %v", p.Name, s.MeanGap, p.MeanGapFreq)
		}
		if s.MedianGap < p.MedianGapFreq/5 || s.MedianGap > p.MedianGapFreq*5 {
			t.Errorf("%s: median gap %v, want within 5x of %v", p.Name, s.MedianGap, p.MedianGapFreq)
		}
	}
}

func TestGroupPlanValidate(t *testing.T) {
	bad := []GroupPlan{
		{Name: "a", Items: 0, Transactions: 10, Groups: 1},
		{Name: "b", Items: 5, Transactions: 10, Groups: 6, Singletons: 6},
		{Name: "c", Items: 5, Transactions: 10, Groups: 3, Singletons: 4},
		{Name: "d", Items: 5, Transactions: 10, Groups: 5, Singletons: 3},                                       // g=n needs all singletons
		{Name: "e", Items: 5, Transactions: 10, Groups: 3, Singletons: 3},                                       // extra items, no room
		{Name: "f", Items: 5, Transactions: 10, Groups: 3, Singletons: 2, MedianGapFreq: 0, MeanGapFreq: 0},     // gaps
		{Name: "g", Items: 5, Transactions: 10, Groups: 3, Singletons: 2, MedianGapFreq: 0.5, MeanGapFreq: 0.1}, // mean < median
		{Name: "h", Items: 50, Transactions: 10, Groups: 20, Singletons: 10, MedianGapFreq: 1, MeanGapFreq: 1},  // too many groups
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %s: want validation error", p.Name)
		}
	}
	ok := GroupPlan{Name: "ok", Items: 10, Transactions: 100, Groups: 4, Singletons: 2,
		MedianGapFreq: 0.05, MeanGapFreq: 0.1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestGroupPlanSingleGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := GroupPlan{Name: "one", Items: 7, Transactions: 50, Groups: 1, Singletons: 0}
	ft, err := p.Counts(rng)
	if err != nil {
		t.Fatal(err)
	}
	gr := dataset.GroupItems(ft)
	if gr.NumGroups() != 1 {
		t.Errorf("groups = %d, want 1", gr.NumGroups())
	}
}

func TestGroupPlanDatabase(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := GroupPlan{Name: "db", Items: 40, Transactions: 200, Groups: 10, Singletons: 5,
		MedianGapFreq: 0.02, MeanGapFreq: 0.05}
	db, err := p.Database(rng)
	if err != nil {
		t.Fatal(err)
	}
	gr := dataset.GroupItems(db.Table())
	if gr.NumGroups() < 9 || gr.NumGroups() > 11 {
		t.Errorf("database groups = %d, want ~10", gr.NumGroups())
	}
}

func TestQuestGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	db, err := Quest(QuestConfig{Items: 30, Transactions: 500}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if db.Transactions() != 500 || db.Items() != 30 {
		t.Fatalf("quest shape (%d,%d)", db.Items(), db.Transactions())
	}
	for i := 0; i < db.Transactions(); i++ {
		if len(db.Transaction(i)) == 0 {
			t.Fatal("quest produced an empty transaction")
		}
	}
	// Correlation: the most popular pattern's items should co-occur far more
	// often than independent items would. Crude check: some pair co-occurs in
	// >= 10% of transactions.
	best := 0
	for a := 0; a < 30; a++ {
		for b := a + 1; b < 30; b++ {
			co := 0
			for i := 0; i < db.Transactions(); i++ {
				tx := db.Transaction(i)
				hasA, hasB := false, false
				for _, x := range tx {
					if int(x) == a {
						hasA = true
					}
					if int(x) == b {
						hasB = true
					}
				}
				if hasA && hasB {
					co++
				}
			}
			if co > best {
				best = co
			}
		}
	}
	if best < 50 {
		t.Errorf("max pair co-occurrence %d/500, want >= 50 (correlated patterns)", best)
	}
	if _, err := Quest(QuestConfig{Items: 1, Transactions: 5}, rng); err == nil {
		t.Error("quest with 1 item: want error")
	}
}

func TestClusterTailPreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 4 + rng.Intn(40)
		gaps := make([]float64, n)
		for i := range gaps {
			gaps[i] = rng.Float64()
		}
		orig := append([]float64(nil), gaps...)
		// Sort then cluster, as Counts does.
		sortFloats(gaps)
		clusterTail(gaps, rng.Float64())
		a := append([]float64(nil), orig...)
		b := append([]float64(nil), gaps...)
		sortFloats(a)
		sortFloats(b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: multiset changed", trial)
			}
		}
	}
	// No-ops.
	short := []float64{3, 1}
	clusterTail(short, 1)
	if short[0] != 3 || short[1] != 1 {
		t.Error("clusterTail modified a short slice")
	}
}

func TestGroupPlanWithClusterKeepsStats(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := ACCIDENTS
	p.GapCluster = 1.0
	ft, err := p.Counts(rng)
	if err != nil {
		t.Fatal(err)
	}
	s := dataset.ComputeStats(p.Name, ft)
	if s.NGroups != p.Groups || s.Singleton != p.Singletons {
		t.Errorf("clustered plan groups/singletons = %d/%d, want %d/%d",
			s.NGroups, s.Singleton, p.Groups, p.Singletons)
	}
	if s.MedianGap < p.MedianGapFreq/5 || s.MedianGap > p.MedianGapFreq*5 {
		t.Errorf("clustered median gap %v, want within 5x of %v", s.MedianGap, p.MedianGapFreq)
	}
}

func TestQuestTinyDomainTerminates(t *testing.T) {
	// Regression: pattern lengths drawn above the domain size used to loop
	// forever collecting distinct items.
	rng := rand.New(rand.NewSource(13))
	for items := 2; items <= 6; items++ {
		db, err := Quest(QuestConfig{Items: items, Transactions: 50, MeanPatternLen: 8}, rng)
		if err != nil {
			t.Fatalf("items=%d: %v", items, err)
		}
		if db.Transactions() != 50 {
			t.Fatalf("items=%d: %d transactions", items, db.Transactions())
		}
	}
}
