// Package chaos is the fault-injection test harness for riskd: it stands up
// a real server (real HTTP listener, real assessment pipeline, real cache
// and snapshot files), drives it through the resilient client
// (internal/riskclient) while a seeded injector (internal/faultinject)
// breaks things on schedule, and checks the robustness invariants the rest
// of the repo only promises:
//
//   - Every 200 carries full provenance: a mode, a method, and — when
//     degraded — a reason. A cached response is never degraded.
//   - Degraded results never reach the snapshot file, even across the
//     encode/decode round trip.
//   - The circuit breaker opens exactly at its threshold, rejects while
//     open, probes after the cooldown, and re-opens or closes on the
//     probe's outcome — transition by transition.
//   - A drain answers every accepted request; nothing in flight is lost.
//   - A killed-and-restarted riskd serves the first repeated digest warm
//     from its snapshot.
//
// Everything is deterministic for a fixed seed and schedule, so a chaos
// failure is a reproducible bug report, not a flake. Run is used by the
// chaos test suite (ci.sh -chaos) and by `riskd -selfcheck-chaos`.
package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"repro/internal/faultinject"
	"repro/internal/riskcache"
	"repro/internal/riskclient"
	"repro/internal/server"
)

// DefaultSchedule is the standard fault mix: periodic compute latency, a
// failed computation, a dropped cache store, periodic transport errors (so
// the client's retry path runs), and a torn first snapshot write.
const DefaultSchedule = "compute:every=4:latency=2ms; compute:nth=5:err; " +
	"cache.store:nth=2:err; transport:every=6:err; snapshot:nth=1:partial=40"

// Config parameterizes one chaos run.
type Config struct {
	// Seed drives the injector and the client's retry jitter. Two runs with
	// the same Seed and Schedule inject identical faults.
	Seed int64
	// Schedule is the fault schedule (faultinject DSL). Empty means
	// DefaultSchedule.
	Schedule string
	// Requests is the fault-phase request count. Zero means 24.
	Requests int
	// Drain is the number of concurrent in-flight requests the drain phase
	// must answer. Zero means 4.
	Drain int
	// Dir is the scratch directory for snapshot files. Required (callers
	// pass t.TempDir() or an os.MkdirTemp result they own).
	Dir string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Report is the outcome of a chaos run. Violations lists every invariant
// breach; an empty list with a nil error from Run means the run passed.
type Report struct {
	Seed           int64    `json:"seed"`
	Schedule       string   `json:"schedule"`
	Requests       int      `json:"requests"`
	OK             int      `json:"ok"`
	Errors         int      `json:"errors"`
	CacheHits      int      `json:"cache_hits"`
	Degraded       int      `json:"degraded"`
	Retries        int64    `json:"retries"`
	BreakerOpens   int64    `json:"breaker_opens"`
	DrainAnswered  int      `json:"drain_answered"`
	SnapshotLoaded int      `json:"snapshot_loaded"`
	InjectedFaults int64    `json:"injected_faults"`
	Violations     []string `json:"violations,omitempty"`
}

func (r *Report) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// countsRequest builds an inline-counts assess request over n items with
// distinct supports — n is effectively the dataset's identity, so distinct
// n means distinct digest and equal n means a repeat.
func countsRequest(n int) *server.AssessRequest {
	counts := make([]int, n)
	for i := range counts {
		counts[i] = i + 1
	}
	return &server.AssessRequest{
		Dataset: server.DatasetRef{Transactions: 2 * n, Counts: counts},
	}
}

// harness is one live riskd instance plus its listener.
type harness struct {
	srv  *server.Server
	http *http.Server
	addr string
	errc chan error
}

func startServer(cfg server.Config) (*harness, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h := &harness{
		srv:  server.New(cfg),
		addr: "http://" + ln.Addr().String(),
		errc: make(chan error, 1),
	}
	h.http = &http.Server{Handler: h.srv.Handler()}
	go func() { h.errc <- h.http.Serve(ln) }()
	return h, nil
}

func (h *harness) stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.http.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-h.errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// noSleep replaces retry/backoff waits in tests: it honors cancellation but
// costs no wall-clock time, so injected fault storms don't slow the suite.
func noSleep(ctx context.Context, _ time.Duration) error { return ctx.Err() }

// Run executes one seeded chaos scenario end to end and reports every
// invariant violation it observed. A non-nil error means the harness itself
// failed (listener, scratch dir, restart), not that an invariant broke.
func Run(cfg Config) (*Report, error) {
	if cfg.Dir == "" {
		return nil, errors.New("chaos: Config.Dir is required")
	}
	if cfg.Schedule == "" {
		cfg.Schedule = DefaultSchedule
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 24
	}
	if cfg.Drain <= 0 {
		cfg.Drain = 4
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{Seed: cfg.Seed, Schedule: cfg.Schedule, Requests: cfg.Requests}

	inj, err := faultinject.NewFromSchedule(cfg.Seed, cfg.Schedule)
	if err != nil {
		return nil, err
	}
	snapPath := filepath.Join(cfg.Dir, "chaos.snap")
	h, err := startServer(server.Config{
		Timeout:      10 * time.Second,
		MaxInflight:  8,
		SnapshotPath: snapPath,
		Injector:     inj,
	})
	if err != nil {
		return nil, err
	}
	logf("chaos: seed %d serving on %s", cfg.Seed, h.addr)

	// The faulty client: transport faults injected, seeded jitter, no real
	// sleeping. Its traffic is the fault phase.
	faulty, err := riskclient.New(riskclient.Config{
		BaseURL:    h.addr,
		HTTPClient: &http.Client{Transport: faultinject.Transport(nil, inj, "transport")},
		Threshold:  1000, // the dedicated breaker phase tests thresholds
		Seed:       cfg.Seed,
		Sleep:      noSleep,
	})
	if err != nil {
		return nil, err
	}
	// The clean client sees no injected faults: it anchors the snapshot and
	// drives the drain phase, where the invariant under test is "nothing
	// accepted is lost", not fault tolerance.
	clean, err := riskclient.New(riskclient.Config{BaseURL: h.addr, Seed: cfg.Seed, Sleep: noSleep})
	if err != nil {
		return nil, err
	}

	runFaultPhase(cfg, rep, faulty)
	runBreakerPhase(cfg, rep, h.addr)
	runDrainPhase(cfg, rep, h, clean)

	// Post-drain: anchor one known digest in the cache (its second request
	// must hit), snapshot, and scan the file for smuggled degraded entries.
	anchor := countsRequest(97)
	ctx := context.Background()
	if _, err := clean.Assess(ctx, anchor); err != nil {
		rep.violatef("anchor request failed on a fault-free client: %v", err)
	}
	if resp, err := clean.Assess(ctx, anchor); err != nil {
		rep.violatef("anchor repeat failed: %v", err)
	} else if !resp.Cached {
		rep.violatef("anchor repeat not served from cache (cached=%v)", resp.Cached)
	}
	if _, err := h.srv.SaveSnapshot(); err != nil {
		// The schedule tears the first snapshot write on purpose; the retry
		// must land because the atomic temp-file dance contains the damage.
		logf("chaos: first snapshot write failed as scheduled: %v", err)
		if _, err := h.srv.SaveSnapshot(); err != nil {
			rep.violatef("snapshot retry failed after a torn write: %v", err)
		}
	}
	scanSnapshot(rep, snapPath)

	if err := h.stop(); err != nil {
		return rep, fmt.Errorf("chaos: stopping first server: %w", err)
	}

	// Kill-and-restart: a fresh server over the same snapshot path must
	// serve the anchored digest warm.
	if err := runRestartPhase(cfg, rep, snapPath, anchor); err != nil {
		return rep, err
	}

	st := faulty.Stats()
	rep.Retries = st.Retries
	rep.InjectedFaults = inj.TotalFaults()
	logf("chaos: seed %d: %d ok / %d errors, %d cache hits, %d retries, %d injected faults, %d violations",
		cfg.Seed, rep.OK, rep.Errors, rep.CacheHits, rep.Retries, rep.InjectedFaults, len(rep.Violations))
	return rep, nil
}

// runFaultPhase fires the request mix through the faulty client and checks
// per-response provenance invariants.
func runFaultPhase(cfg Config, rep *Report, client *riskclient.Client) {
	ctx := context.Background()
	for i := 0; i < cfg.Requests; i++ {
		// Five distinct digests, revisited round-robin: repeats exercise
		// the cache under fire.
		resp, err := client.Assess(ctx, countsRequest(8+i%5))
		if err != nil {
			// Faults are being injected; failed calls are expected. The
			// invariants are about what the successes claim.
			rep.Errors++
			continue
		}
		rep.OK++
		if resp.Outcome == nil || resp.Mode == "" || resp.Method == "" {
			rep.violatef("request %d: 200 without provenance: %+v", i, resp)
			continue
		}
		if resp.Degraded {
			rep.Degraded++
			if resp.DegradedReason == "" {
				rep.violatef("request %d: degraded without a reason", i)
			}
		}
		if resp.Cached {
			rep.CacheHits++
			if resp.Degraded {
				rep.violatef("request %d: cached AND degraded — the never-cache-degraded invariant broke", i)
			}
		}
	}
}

// runBreakerPhase drives a dedicated client through an exact failure script
// and checks every breaker transition against the state machine.
func runBreakerPhase(cfg Config, rep *Report, addr string) {
	const threshold = 3
	// Occurrences 1..4 of the transport op fail, the 5th succeeds: three
	// failures open the breaker, the first probe re-opens it, the second
	// closes it.
	inj, err := faultinject.NewFromSchedule(cfg.Seed,
		"breaker.transport:nth=1:err; breaker.transport:nth=2:err; "+
			"breaker.transport:nth=3:err; breaker.transport:nth=4:err")
	if err != nil {
		rep.violatef("breaker phase: building injector: %v", err)
		return
	}
	now := time.Unix(1_700_000_000, 0)
	cooldown := 5 * time.Second
	client, err := riskclient.New(riskclient.Config{
		BaseURL:     addr,
		HTTPClient:  &http.Client{Transport: faultinject.Transport(nil, inj, "breaker.transport")},
		MaxAttempts: 1, // one attempt per call: transitions map 1:1 to calls
		Threshold:   threshold,
		Cooldown:    cooldown,
		Seed:        cfg.Seed,
		Sleep:       noSleep,
		Now:         func() time.Time { return now },
	})
	if err != nil {
		rep.violatef("breaker phase: building client: %v", err)
		return
	}
	ctx := context.Background()
	req := countsRequest(41)

	for i := 1; i <= threshold; i++ {
		if _, err := client.Assess(ctx, req); err == nil {
			rep.violatef("breaker phase: call %d succeeded despite an injected transport fault", i)
		}
		want := riskclient.Closed
		if i == threshold {
			want = riskclient.Open
		}
		if got := client.State(); got != want {
			rep.violatef("breaker phase: after %d failures state = %v, want %v", i, got, want)
		}
	}
	if st := client.Stats(); st.BreakerOpens != 1 {
		rep.violatef("breaker phase: opens = %d after threshold, want 1", st.BreakerOpens)
	}
	// Open and inside the cooldown: the call must short-circuit without an
	// HTTP attempt.
	before := client.Stats().Attempts
	if _, err := client.Assess(ctx, req); !errors.Is(err, riskclient.ErrCircuitOpen) {
		rep.violatef("breaker phase: call during cooldown returned %v, want ErrCircuitOpen", err)
	}
	if after := client.Stats().Attempts; after != before {
		rep.violatef("breaker phase: short-circuited call still attempted HTTP (%d -> %d)", before, after)
	}
	// Past the cooldown the probe goes through — and fails (occurrence 4),
	// re-opening the breaker.
	now = now.Add(cooldown + time.Second)
	if _, err := client.Assess(ctx, req); err == nil {
		rep.violatef("breaker phase: failing probe reported success")
	}
	if got := client.State(); got != riskclient.Open {
		rep.violatef("breaker phase: state after failed probe = %v, want Open", got)
	}
	if st := client.Stats(); st.BreakerOpens != 2 {
		rep.violatef("breaker phase: opens after failed probe = %d, want 2", st.BreakerOpens)
	}
	// Next cooldown's probe succeeds (occurrence 5 has no fault): Closed.
	now = now.Add(cooldown + time.Second)
	if _, err := client.Assess(ctx, req); err != nil {
		rep.violatef("breaker phase: recovering probe failed: %v", err)
	}
	if got := client.State(); got != riskclient.Closed {
		rep.violatef("breaker phase: state after successful probe = %v, want Closed", got)
	}
	rep.BreakerOpens = client.Stats().BreakerOpens
}

// runDrainPhase launches concurrent requests, begins a drain while they are
// in flight, and checks that readiness flips, every request is answered,
// and the drain completes.
func runDrainPhase(cfg Config, rep *Report, h *harness, client *riskclient.Client) {
	ctx := context.Background()
	type result struct {
		resp *server.AssessResponse
		err  error
	}
	baseline := h.srv.CompletedJobs()
	results := make(chan result, cfg.Drain)
	for i := 0; i < cfg.Drain; i++ {
		go func(i int) {
			// Distinct, deliberately larger datasets: the computations
			// stay in flight long enough for the drain to overlap them.
			resp, err := client.Assess(ctx, countsRequest(400+37*i))
			results <- result{resp, err}
		}(i)
	}

	// Wait until the server has accepted work (or everything already
	// finished — the drain assertions hold either way).
	tick := time.NewTicker(time.Millisecond)
	deadline := time.NewTimer(5 * time.Second)
	defer tick.Stop()
	defer deadline.Stop()
wait:
	for h.srv.InflightJobs() == 0 && h.srv.CompletedJobs()-baseline < int64(cfg.Drain) {
		select {
		case <-tick.C:
		case <-deadline.C:
			break wait
		}
	}

	h.srv.BeginDrain()
	var herr *riskclient.HTTPError
	if err := client.Ready(ctx); !errors.As(err, &herr) || herr.Status != http.StatusServiceUnavailable {
		rep.violatef("drain phase: /readyz during drain returned %v, want HTTP 503", err)
	}

	for i := 0; i < cfg.Drain; i++ {
		r := <-results
		if r.err != nil {
			rep.violatef("drain phase: in-flight request lost to the drain: %v", r.err)
			continue
		}
		rep.DrainAnswered++
		if r.resp.Outcome == nil || r.resp.Mode == "" || r.resp.Method == "" {
			rep.violatef("drain phase: drained request lost provenance: %+v", r.resp)
		}
	}
	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := h.srv.DrainWait(drainCtx); err != nil {
		rep.violatef("drain phase: DrainWait: %v", err)
	}
}

// scanSnapshot opens the snapshot file with a permissive decoder and counts
// degraded entries — there must be none, whatever the cache held.
func scanSnapshot(rep *Report, path string) {
	degraded := 0
	scan := riskcache.New[*server.Outcome](0)
	loaded, _, err := scan.LoadFile(path, func(b []byte) (*server.Outcome, bool, error) {
		var o server.Outcome
		if err := json.Unmarshal(b, &o); err != nil {
			return nil, false, err
		}
		if o.Degraded {
			degraded++
		}
		return &o, true, nil
	})
	if err != nil {
		rep.violatef("snapshot scan: %v", err)
		return
	}
	if loaded == 0 {
		rep.violatef("snapshot scan: snapshot holds no entries (anchor should be there)")
	}
	if degraded > 0 {
		rep.violatef("snapshot scan: %d degraded entries persisted — the never-snapshot-degraded invariant broke", degraded)
	}
}

// runRestartPhase boots a second server over the surviving snapshot and
// requires the anchored digest to come back as a warm cache hit.
func runRestartPhase(cfg Config, rep *Report, snapPath string, anchor *server.AssessRequest) error {
	h2, err := startServer(server.Config{Timeout: 10 * time.Second, SnapshotPath: snapPath})
	if err != nil {
		return fmt.Errorf("chaos: restarting server: %w", err)
	}
	defer h2.stop()
	loaded, skipped, err := h2.srv.LoadSnapshot()
	if err != nil {
		rep.violatef("restart phase: loading snapshot: %v", err)
		return nil
	}
	rep.SnapshotLoaded = loaded
	if loaded == 0 {
		rep.violatef("restart phase: snapshot loaded 0 entries (skipped %d)", skipped)
	}
	client, err := riskclient.New(riskclient.Config{BaseURL: h2.addr, Seed: cfg.Seed, Sleep: noSleep})
	if err != nil {
		return err
	}
	resp, err := client.Assess(context.Background(), anchor)
	if err != nil {
		rep.violatef("restart phase: anchored request failed: %v", err)
		return nil
	}
	if !resp.Cached {
		rep.violatef("restart phase: anchored digest not served from the snapshot (cached=%v)", resp.Cached)
	}
	if resp.Degraded {
		rep.violatef("restart phase: snapshot served a degraded result")
	}
	return nil
}
