package chaos

import (
	"fmt"
	"testing"
)

// TestChaosSeedMatrix runs the full scenario — fault phase, breaker script,
// drain, snapshot scan, kill-and-restart — for each fixed seed. ci.sh
// -chaos runs this under -race.
func TestChaosSeedMatrix(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep, err := Run(Config{Seed: seed, Dir: t.TempDir(), Logf: t.Logf})
			if err != nil {
				t.Fatalf("harness failure: %v", err)
			}
			for _, v := range rep.Violations {
				t.Errorf("invariant violation: %s", v)
			}
			// The run must have actually exercised the machinery, not
			// vacuously passed.
			if rep.OK == 0 {
				t.Error("no successful requests in the fault phase")
			}
			if rep.CacheHits == 0 {
				t.Error("no cache hits despite repeated digests")
			}
			if rep.InjectedFaults == 0 {
				t.Error("the schedule injected no faults")
			}
			if rep.Retries == 0 {
				t.Error("transport faults caused no retries")
			}
			if rep.BreakerOpens != 2 {
				t.Errorf("breaker opened %d times, want exactly 2 (threshold + failed probe)", rep.BreakerOpens)
			}
			if rep.DrainAnswered != 4 {
				t.Errorf("drain answered %d requests, want all 4", rep.DrainAnswered)
			}
			if rep.SnapshotLoaded == 0 {
				t.Error("restart loaded nothing from the snapshot")
			}
		})
	}
}

// TestChaosDeterminism: identical seeds inject identical faults and land on
// identical counters.
func TestChaosDeterminism(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Config{Seed: 7, Dir: t.TempDir()})
		if err != nil {
			t.Fatalf("harness failure: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.InjectedFaults != b.InjectedFaults {
		t.Errorf("injected faults differ across identical runs: %d vs %d", a.InjectedFaults, b.InjectedFaults)
	}
	if a.OK != b.OK || a.Errors != b.Errors {
		t.Errorf("outcomes differ across identical runs: %d/%d vs %d/%d", a.OK, a.Errors, b.OK, b.Errors)
	}
}

func TestChaosConfigValidation(t *testing.T) {
	if _, err := Run(Config{Seed: 1}); err == nil {
		t.Error("Run without Dir should fail")
	}
	if _, err := Run(Config{Seed: 1, Dir: t.TempDir(), Schedule: "not-a-schedule"}); err == nil {
		t.Error("Run with a malformed schedule should fail")
	}
}
