// Package anonrisk is a Go reproduction of Lakshmanan, Ng and Ramesh,
// "To Do or Not To Do: The Dilemma of Disclosing Anonymized Data"
// (SIGMOD 2005): a library for quantifying the re-identification risk of
// releasing anonymized transaction data to a hacker holding partial
// information.
//
// The model: a data owner anonymizes a transaction database by renaming
// items through a secret bijection and releases it for frequent-set mining.
// A hacker who can guess frequency ranges for the original items — a belief
// function — narrows down which anonymized item hides which original by
// matching observed frequencies against those ranges. Assuming every
// consistent guess (perfect matching of the consistency graph) is equally
// likely, the owner's risk is the expected number of correctly
// re-identified items ("cracks").
//
// The package front door covers the full workflow:
//
//	db, _ := anonrisk.ReadFIMI(file)                    // or build/generate one
//	release, key, _ := anonrisk.Anonymize(db, rng)      // what the owner ships
//	res, _ := anonrisk.AssessRisk(db, 0.1, rng)         // Figure 8's recipe
//	if res.Disclose { ... }
//
// Fine-grained control — belief-function construction, exact closed forms
// (Lemmas 1-6), the O-estimate with degree-1 propagation, permanent-based
// exact expectations, the matching-space sampler, benchmark data generators
// and the experiment harness — lives in the internal packages
// (internal/belief, internal/core, internal/bipartite, internal/matching,
// internal/datagen, internal/recipe, internal/experiments); this package
// re-exports the types needed to drive them together.
package anonrisk
