package anonrisk

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// bigMartDB reconstructs the paper's Figure 1 example.
func bigMartDB(t testing.TB) *Database {
	t.Helper()
	db, err := NewDatabase(6, []Transaction{
		{0, 1, 2}, {0, 1, 2}, {0, 1, 3}, {0, 1, 3}, {0, 3, 5},
		{2, 3, 5}, {2, 4, 5}, {2, 5}, {4, 5}, {3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFIMIRoundTripFacade(t *testing.T) {
	db := bigMartDB(t)
	var buf bytes.Buffer
	if err := WriteFIMI(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFIMI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Transactions() != db.Transactions() {
		t.Errorf("round trip lost transactions")
	}
	if _, err := ReadFIMI(strings.NewReader("not numbers")); err == nil {
		t.Error("garbage input: want error")
	}
}

func TestAnonymizePreservesMining(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := bigMartDB(t)
	release, key, err := Anonymize(db, rng)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := MineFrequentItemsets(db, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	anon, err := MineFrequentItemsets(release, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != len(anon) {
		t.Fatalf("mining changed under anonymization: %d vs %d itemsets", len(orig), len(anon))
	}
	anonKeys := map[string]int{}
	for _, fs := range anon {
		anonKeys[fs.Items.Key()] = fs.Support
	}
	for _, fs := range orig {
		img := fs.Items.Map(key.ToAnon)
		if anonKeys[img.Key()] != fs.Support {
			t.Errorf("itemset %v: support %d, image has %d", fs.Items, fs.Support, anonKeys[img.Key()])
		}
	}
}

func TestExpectedCracksHelpers(t *testing.T) {
	db := bigMartDB(t)
	if got := ExpectedCracksIgnorant(db.Items()); got != 1 {
		t.Errorf("Lemma 1 helper = %v", got)
	}
	if got := ExpectedCracksExactKnowledge(db); got != 3 {
		t.Errorf("Lemma 3 helper = %v, want 3 (BigMart groups .3/.4/.5)", got)
	}
}

func TestBeliefHelpers(t *testing.T) {
	db := bigMartDB(t)
	freqs := db.Frequencies()
	if !Ignorant(6).IsIgnorant() {
		t.Error("Ignorant helper broken")
	}
	if !ExactKnowledge(db).IsPointValued() {
		t.Error("ExactKnowledge should be point-valued")
	}
	bp := BallparkKnowledge(db, 0.05)
	if !bp.IsCompliant(freqs) {
		t.Error("BallparkKnowledge must be compliant")
	}
	auto := BallparkKnowledge(db, 0)
	if !auto.IsCompliant(freqs) {
		t.Error("δ_med BallparkKnowledge must be compliant")
	}
	g, err := ConsistencyGraph(bp, db)
	if err != nil {
		t.Fatal(err)
	}
	if g.Items() != 6 {
		t.Errorf("graph over %d items", g.Items())
	}
}

func TestBeliefFromSample(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db := bigMartDB(t)
	bf := BeliefFromSample(db) // "sample" = whole database: fully compliant
	if a := bf.Alpha(db.Frequencies()); a != 1 {
		t.Errorf("full-sample belief alpha = %v, want 1", a)
	}
	_ = rng
}

func TestAttackEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := bigMartDB(t)

	// Ignorant hacker: OE = 1.
	rep, err := Attack(Ignorant(6), db, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.OEstimate-1) > 1e-9 {
		t.Errorf("ignorant OE = %v, want 1", rep.OEstimate)
	}
	if math.Abs(rep.Simulated-1) > 0.2 {
		t.Errorf("ignorant simulated = %v, want ~1", rep.Simulated)
	}

	// Omniscient hacker: OE = g = 3, with the two singleton groups forced.
	rep, err = Attack(ExactKnowledge(db), db, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.OEstimate-3) > 1e-9 {
		t.Errorf("exact-knowledge OE = %v, want 3", rep.OEstimate)
	}
	if rep.ForcedCracks != 2 {
		t.Errorf("ForcedCracks = %d, want 2 (items with unique frequencies)", rep.ForcedCracks)
	}
	if f := rep.OEstimateFraction(); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("fraction = %v, want 0.5", f)
	}
}

func TestAttackInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := bigMartDB(t)
	// All intervals miss every observed frequency.
	ivs := make([]Interval, 6)
	for i := range ivs {
		ivs[i] = Interval{Lo: 0.9, Hi: 0.95}
	}
	bf, err := NewBelief(ivs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Attack(bf, db, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Infeasible {
		t.Error("want infeasible attack report")
	}
	// §5.3 per-item fallback: no item is compliant, so OE = Σ 1/O_x over the
	// empty set.
	if rep.OEstimate != 0 {
		t.Errorf("fully non-compliant OE = %v, want 0", rep.OEstimate)
	}
	// Simulation is skipped for infeasible graphs.
	if rep.Simulated != 0 || rep.SimulatedStdDev != 0 {
		t.Errorf("infeasible report must skip simulation, got %v ± %v", rep.Simulated, rep.SimulatedStdDev)
	}
}

func TestAttackInfeasiblePartialCompliance(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	db := bigMartDB(t)
	// The two singleton-frequency items (1 and 4) guess wrong, destroying
	// every global matching; the four 0.5-group items stay compliant.
	ivs := []Interval{
		{Lo: 0.5, Hi: 0.5}, {Lo: 0.9, Hi: 0.95}, {Lo: 0.5, Hi: 0.5},
		{Lo: 0.5, Hi: 0.5}, {Lo: 0.9, Hi: 0.95}, {Lo: 0.5, Hi: 0.5},
	}
	bf, err := NewBelief(ivs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Attack(bf, db, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Infeasible {
		t.Fatal("want infeasible attack report")
	}
	// §5.3: the four compliant items each keep outdegree 4 -> OE = 4·(1/4).
	if math.Abs(rep.OEstimate-1) > 1e-9 {
		t.Errorf("per-item fallback OE = %v, want 1", rep.OEstimate)
	}
	if rep.Expected != rep.OEstimate || rep.Method != MethodOEstimate {
		t.Errorf("infeasible report: Expected %v Method %q, want the §5.3 O-estimate", rep.Expected, rep.Method)
	}
}

func TestAssessRiskFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A flat database (single frequency group) discloses immediately.
	var txs []Transaction
	for i := 0; i < 20; i++ {
		txs = append(txs, Transaction{0, 1, 2, 3, 4})
	}
	db, err := NewDatabase(5, txs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AssessRisk(db, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Disclose {
		t.Errorf("flat database should disclose: %+v", res)
	}
	// Options passthrough.
	res2, err := AssessRiskOptions(db, AssessOptions{Tolerance: 0.3, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Disclose {
		t.Error("options path should agree")
	}
}

func TestComputeStatsFacade(t *testing.T) {
	s := ComputeStats("bigmart", bigMartDB(t))
	if s.NItems != 6 || s.NGroups != 3 || s.Singleton != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestAttackSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	db := bigMartDB(t)
	// Interested only in the two uniquely-frequent items (ids 1 and 4).
	interest := []bool{false, true, false, false, true, false}
	rep, err := AttackSubset(ExactKnowledge(db), db, interest, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.OEstimate-2) > 1e-9 {
		t.Errorf("subset OE = %v, want 2 (both singletons cracked)", rep.OEstimate)
	}
	// Full interest reduces to Attack.
	full, err := AttackSubset(ExactKnowledge(db), db, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.OEstimate-3) > 1e-9 {
		t.Errorf("nil interest OE = %v, want 3", full.OEstimate)
	}
}

func TestCrackDistributionFacade(t *testing.T) {
	db := bigMartDB(t)
	dist, err := CrackDistribution(ExactKnowledge(db), db)
	if err != nil {
		t.Fatal(err)
	}
	// Two singletons always cracked; the 4-group contributes derangement
	// statistics. Expectation must be 3 (Lemma 3).
	exp, sum := 0.0, 0.0
	for k, p := range dist {
		exp += float64(k) * p
		sum += p
	}
	if math.Abs(exp-3) > 1e-9 {
		t.Errorf("E from distribution = %v, want 3", exp)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
	if dist[0] != 0 || dist[1] != 0 {
		t.Errorf("fewer than 2 cracks should be impossible: P(0)=%v P(1)=%v", dist[0], dist[1])
	}
}

func TestFacadeErrorPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := bigMartDB(t)
	// Belief over the wrong domain size propagates an error everywhere.
	wrong := Ignorant(3)
	if _, err := Attack(wrong, db, false, rng); err == nil {
		t.Error("Attack with mismatched belief: want error")
	}
	if _, err := AttackSubset(wrong, db, nil, rng); err == nil {
		t.Error("AttackSubset with mismatched belief: want error")
	}
	if _, err := AttackSubset(Ignorant(6), db, []bool{true}, rng); err == nil {
		t.Error("AttackSubset with short interest: want error")
	}
	if _, err := CrackDistribution(wrong, db); err == nil {
		t.Error("CrackDistribution with mismatched belief: want error")
	}
	if _, err := MineFrequentItemsets(db, 0); err == nil {
		t.Error("MineFrequentItemsets with support 0: want error")
	}
	if _, err := MineFrequentItemsets(db, 2); err == nil {
		t.Error("MineFrequentItemsets with support > 1: want error")
	}
}

func TestAttackSubsetInfeasibleFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	db := bigMartDB(t)
	// Items 1 and 4 (the singleton groups) guess a frequency no item has:
	// their own groups lose all candidates -> no global matching.
	ivs := []Interval{
		{Lo: 0.5, Hi: 0.5}, {Lo: 0.9, Hi: 0.95}, {Lo: 0.5, Hi: 0.5},
		{Lo: 0.5, Hi: 0.5}, {Lo: 0.9, Hi: 0.95}, {Lo: 0.5, Hi: 0.5},
	}
	bf, err := NewBelief(ivs)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AttackSubset(bf, db, []bool{true, true, true, true, true, true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Infeasible {
		t.Error("want infeasible fallback")
	}
	// Per-item §5.3 estimate over the compliant 0.5-group items: 4 × 1/4.
	if math.Abs(rep.OEstimate-1) > 1e-9 {
		t.Errorf("fallback OE = %v, want 1", rep.OEstimate)
	}
}
