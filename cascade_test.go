package anonrisk

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bipartite"
	"repro/internal/budget"
)

// singleGroupDB builds a database whose n items all share frequency 1 — one
// frequency group, so exact knowledge induces the complete bipartite graph
// K_n. Expected cracks of a uniform perfect matching on K_n is exactly 1
// (Lemma 1 / the derangement limit), which every cascade tier must agree on.
func singleGroupDB(t testing.TB, n int) *Database {
	t.Helper()
	all := make(Transaction, n)
	for i := range all {
		all[i] = int32(i)
	}
	db, err := NewDatabase(n, []Transaction{all, all, all})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestAttackCtxDegradesToOEstimate is the headline acceptance scenario: a
// domain large enough that exact counting blows a 50ms budget must yield the
// O-estimate answer — not an error, not a hang — with provenance recorded.
func TestAttackCtxDegradesToOEstimate(t *testing.T) {
	db := singleGroupDB(t, 22) // exact tier alone needs tens of seconds
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	rep, err := AttackCtx(ctx, ExactKnowledge(db), db, AttackOptions{
		Exact: true,
		Rng:   rand.New(rand.NewSource(1)),
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("cascade must degrade, not fail: %v", err)
	}
	if !rep.Degraded {
		t.Error("want Degraded set after the exact tier ran out of budget")
	}
	if rep.Method != MethodOEstimate {
		t.Errorf("Method = %q, want %q (both expensive tiers exhausted)", rep.Method, MethodOEstimate)
	}
	// O-estimate on the single-group complete graph: 22 × 1/22 = 1.
	if math.Abs(rep.Expected-1) > 1e-9 {
		t.Errorf("Expected = %v, want 1", rep.Expected)
	}
	if rep.DegradedReason == "" {
		t.Error("want a DegradedReason explaining what was abandoned")
	}
	// The 50ms deadline plus prompt budget polls bound the whole call; 5s is
	// generous slack for race-enabled CI. Without budgets this takes minutes.
	if elapsed > 5*time.Second {
		t.Errorf("degradation took %v, want prompt abort", elapsed)
	}
}

// TestAttackCtxDegradesToSampled exercises the middle tier: an operation
// limit that the exact permanent DP exceeds but a small MCMC run fits.
func TestAttackCtxDegradesToSampled(t *testing.T) {
	db := singleGroupDB(t, 22)
	// 200k ops: the exact tier's 2^22-state DP exceeds it almost at once; the
	// sampler below needs ~(5+20·2)·22 ≈ 1k ops per run.
	ctx := budget.WithMaxOps(context.Background(), 200_000)

	rep, err := AttackCtx(ctx, ExactKnowledge(db), db, AttackOptions{
		Exact: true,
		Sampler: SamplerConfig{
			Runs: 2, Samples: 20, SeedSweeps: 5, SampleGap: 2,
		},
		Rng: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatalf("cascade must degrade, not fail: %v", err)
	}
	if !rep.Degraded {
		t.Error("want Degraded set after the exact tier hit its op limit")
	}
	if rep.Method != MethodSampled {
		t.Errorf("Method = %q, want %q", rep.Method, MethodSampled)
	}
	// Uniform matching on K_22 has E(X) = 1; 40 correlated MCMC samples land
	// well within this slack.
	if math.Abs(rep.Expected-1) > 0.75 {
		t.Errorf("sampled Expected = %v, want ≈1", rep.Expected)
	}
	if rep.Simulated != rep.Expected {
		t.Errorf("Simulated %v should carry the sampled mean %v", rep.Simulated, rep.Expected)
	}
}

// TestAttackCtxExactWithinBudget: with no budget pressure the preferred tier
// wins and nothing is marked degraded.
func TestAttackCtxExactWithinBudget(t *testing.T) {
	db := bigMartDB(t) // 6 items: exact is instant
	rep, err := AttackCtx(context.Background(), ExactKnowledge(db), db, AttackOptions{Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != MethodExact || rep.Degraded {
		t.Errorf("Method = %q Degraded = %v, want exact/undegraded", rep.Method, rep.Degraded)
	}
	// Lemma 3: expected cracks = number of frequency groups = 3.
	if math.Abs(rep.Expected-3) > 1e-9 {
		t.Errorf("exact Expected = %v, want 3", rep.Expected)
	}
}

// TestCanceledContextAborts: explicit cancellation is a hard abort — no
// degradation, a typed error, and a return within one CheckEvery window.
func TestCanceledContextAborts(t *testing.T) {
	e := bipartite.Complete(22) // ~3s of DP when allowed to finish

	// Pre-canceled: the upfront check fires before any DP state is visited.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := e.CountPerfectMatchingsCtx(ctx)
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if budget.Degradable(err) {
		t.Error("cancellation must not be degradable")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("pre-canceled count took %v", d)
	}

	// Mid-flight: cancel while the DP is running; the next CheckEvery poll
	// (every 1024 charged states) must notice.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel2()
	}()
	start = time.Now()
	_, err = e.CountPerfectMatchingsCtx(ctx2)
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("mid-flight err = %v, want ErrCanceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("mid-flight cancel took %v, want abort within one poll window", d)
	}
}

// TestAttackCtxCanceled: cancellation reaches through the facade too — the
// cascade must not "degrade around" an explicit abort.
func TestAttackCtxCanceled(t *testing.T) {
	db := singleGroupDB(t, 22)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AttackCtx(ctx, ExactKnowledge(db), db, AttackOptions{Exact: true})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestAssessRiskCtxDegrades: the α binary search returns its proven lower
// bound when the op budget dies mid-search, with the verdict taken
// conservatively.
func TestAssessRiskCtxDegrades(t *testing.T) {
	db := bigMartDB(t)
	// One op: the search-level budget (CheckEvery 1) dies on its first
	// charge; the cheap O(n) stages never accumulate enough to poll.
	ctx := budget.WithMaxOps(context.Background(), 1)
	res, err := AssessRiskCtx(ctx, db, 0.1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("assess must degrade, not fail: %v", err)
	}
	if !res.Degraded {
		t.Fatalf("want Degraded result, got %+v", res)
	}
	if res.AlphaMax != 0 {
		t.Errorf("AlphaMax = %v, want the conservative 0 lower bound", res.AlphaMax)
	}
	if res.Disclose {
		t.Error("degraded lower bound 0 must not disclose")
	}
	// Sanity: without the limit the same search completes undegraded.
	full, err := AssessRisk(db, 0.1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if full.Degraded {
		t.Error("unbudgeted assess must not degrade")
	}
	if full.AlphaMax < res.AlphaMax {
		t.Errorf("full AlphaMax %v < degraded bound %v", full.AlphaMax, res.AlphaMax)
	}
}

// TestCrackDistributionCtxBudget: the enumeration path has no cheaper
// fallback; it must surface a typed budget error instead.
func TestCrackDistributionCtxBudget(t *testing.T) {
	db := singleGroupDB(t, 12) // 12! ≈ 4.8e8 matchings: far beyond the limit
	ctx := budget.WithMaxOps(context.Background(), 10_000)
	_, err := CrackDistributionCtx(ctx, ExactKnowledge(db), db)
	if !budget.IsBudgetError(err) {
		t.Fatalf("err = %v, want a typed budget error", err)
	}
	if budget.ExitCode(err) != budget.ExitCodeBudget {
		t.Errorf("ExitCode = %d, want %d", budget.ExitCode(err), budget.ExitCodeBudget)
	}
}
