package anonrisk_test

import (
	"fmt"
	"math/rand"

	anonrisk "repro"
)

// bigMart is the paper's Figure 1 running example: six items over ten
// transactions with frequencies (.5, .4, .5, .5, .3, .5).
func bigMart() *anonrisk.Database {
	db, err := anonrisk.NewDatabase(6, []anonrisk.Transaction{
		{0, 1, 2}, {0, 1, 2}, {0, 1, 3}, {0, 1, 3}, {0, 3, 5},
		{2, 3, 5}, {2, 4, 5}, {2, 5}, {4, 5}, {3, 4},
	})
	if err != nil {
		panic(err)
	}
	return db
}

// The two extremes of hacker knowledge, straight from Lemmas 1 and 3.
func ExampleExpectedCracksIgnorant() {
	db := bigMart()
	fmt.Printf("ignorant hacker: %.0f expected crack\n", anonrisk.ExpectedCracksIgnorant(db.Items()))
	fmt.Printf("omniscient hacker: %.0f expected cracks (one per frequency group)\n",
		anonrisk.ExpectedCracksExactKnowledge(db))
	// Output:
	// ignorant hacker: 1 expected crack
	// omniscient hacker: 3 expected cracks (one per frequency group)
}

// Attack quantifies a concrete hacker against a release.
func ExampleAttack() {
	db := bigMart()
	rng := rand.New(rand.NewSource(1))
	rep, err := anonrisk.Attack(anonrisk.ExactKnowledge(db), db, false, rng)
	if err != nil {
		panic(err)
	}
	fmt.Printf("expected cracks %.0f of %d items; %d identified with certainty\n",
		rep.OEstimate, rep.Items, rep.ForcedCracks)
	// Output:
	// expected cracks 3 of 6 items; 2 identified with certainty
}

// AssessRisk runs the paper's Figure 8 recipe end to end.
func ExampleAssessRisk() {
	// A flat release: every item equally frequent, one frequency group.
	var txs []anonrisk.Transaction
	for i := 0; i < 10; i++ {
		txs = append(txs, anonrisk.Transaction{0, 1, 2, 3, 4})
	}
	db, err := anonrisk.NewDatabase(5, txs)
	if err != nil {
		panic(err)
	}
	res, err := anonrisk.AssessRisk(db, 0.25, rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("disclose=%v (decided by: %s)\n", res.Disclose, res.Stage)
	// Output:
	// disclose=true (decided by: point-valued worst case within tolerance)
}

// Anonymization keeps mining results intact — that is the whole dilemma.
func ExampleAnonymize() {
	db := bigMart()
	rng := rand.New(rand.NewSource(7))
	release, _, err := anonrisk.Anonymize(db, rng)
	if err != nil {
		panic(err)
	}
	before, _ := anonrisk.MineFrequentItemsets(db, 0.3)
	after, _ := anonrisk.MineFrequentItemsets(release, 0.3)
	fmt.Printf("frequent itemsets before: %d, after anonymization: %d\n", len(before), len(after))
	// Output:
	// frequent itemsets before: 9, after anonymization: 9
}
